//! Fleet-scale simulation: thousands of racks stepping in lock-step
//! epochs on a shared, zero-copy substrate.
//!
//! The paper's controller manages one rack; its motivation (Fig. 1) is a
//! datacenter. A [`FleetSpec`] scales the single-rack engine out to N
//! racks under one renewable feed:
//!
//! * **Shared substrate, zero copies.** One [`Rack`] (the immutable
//!   platform/workload table and ground-truth server models), one solar
//!   [`PowerTrace`] (synthesized once from the base scenario, scaled
//!   per-rack by a deterministic factor), and — when pretraining is on —
//!   one [`PerfDatabase`] of profiling curves, all behind `Arc`s. Each
//!   controller reads the curve store through a
//!   [`CowDatabase`](greenhetero_core::database::CowDatabase): its own
//!   refits copy single entries into a private overlay, so memory stays
//!   flat in N until a rack actually diverges.
//! * **Owned per-rack state.** Battery, grid feed, meter/perf RNGs,
//!   solver scratch and cache are constructed per rack from a seed mixed
//!   from the base seed and the rack id — never from worker identity —
//!   so a fleet run is bit-identical at any worker count, including 1.
//! * **Batched solves.** One fleet-wide
//!   [`SharedSolveCache`] dedups the per-epoch PAR solve across racks:
//!   controllers facing bit-identical problems (same model fingerprints,
//!   same budget bucket, full-equality revalidation on hit) pay one cold
//!   solve and reuse the answer. Attaching, detaching, or resizing the
//!   cache never changes a single output bit (DESIGN.md §14).
//! * **Work-stolen lock-step epochs.** Racks are grouped into
//!   contiguous batches and dispatched onto the work-stealing epoch
//!   executor ([`crate::sched::run_epoch_batches`]): within an epoch,
//!   whichever worker is free steals the next batch, and a dependency
//!   counter (not a barrier) detects epoch completion. The worker that
//!   finishes the last batch becomes the rollover leader: it folds every
//!   batch's epoch records into the fleet accumulators **in ascending
//!   rack order** (never completion order), flushes the shared event
//!   sink through the finished epoch, and seeds the next one — so every
//!   float sum is a fixed-order reduction and the fleet CSV/JSONL is
//!   byte-identical at any worker count. Records are folded at the
//!   rollover and dropped: resident state is O(racks), not
//!   O(racks × epochs), which is what lets 100k-rack fleets fit a
//!   per-rack RSS budget (BENCH_fleet.json gates it).
//!
//! [`FleetSpec::run_sequential`] is the plain one-rack-after-another
//! reference implementation the lock-step engine is tested against.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

use greenhetero_core::database::PerfDatabase;
use greenhetero_core::error::CoreError;
use greenhetero_core::metrics::EpuAccumulator;
use greenhetero_core::solver::{SharedSolveCache, SharedSolveStats, DEFAULT_SHARED_SOLVE_CAPACITY};
use greenhetero_core::telemetry::{EpochEvent, RunLedger, Telemetry, TelemetrySink};
use greenhetero_core::types::{EpochId, Ratio, SimTime, Throughput, WattHours, Watts};
use greenhetero_power::solar::synthesize_shared;
use greenhetero_power::trace::PowerTrace;
use greenhetero_server::rack::Rack;

use crate::engine::Simulation;
use crate::report::{EpochRecord, RunReport};
use crate::runner::worker_count;
use crate::scenario::{Scenario, TelemetrySpec};
use crate::sched::run_epoch_batches;

/// A fleet experiment: N racks of the base scenario under one solar
/// plant, stepped in lock-step epochs.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// The per-rack scenario template. Its seed, solar trace, rack
    /// composition, faults, and telemetry spec apply fleet-wide; each
    /// rack derives its own RNG seeds from `base.seed` and its rack id.
    pub base: Scenario,
    /// Number of racks to simulate.
    pub racks: u32,
    /// Worker threads stepping the fleet; `0` means
    /// [`worker_count`] (machine parallelism, `GH_SIM_THREADS` aware).
    pub workers: usize,
    /// Half-width of the deterministic per-rack solar scale band: rack
    /// scale factors are drawn from `[1 - spread, 1 + spread)` by a hash
    /// of (base seed, rack id). `0.0` pins every rack to exactly `1.0`,
    /// which multiplies bit-transparently.
    pub solar_scale_spread: f64,
    /// Pretrain one shared, noise-free profiling database and hand it to
    /// every controller as a copy-on-write base, instead of every rack
    /// running its own training epoch.
    pub pretrain: bool,
    /// Capacity (entries) of the fleet-wide [`SharedSolveCache`] that
    /// dedups identical PAR solves across racks; `0` disables it. Purely
    /// an acceleration: every report, CSV row, ledger entry, and event is
    /// bit-identical at any capacity, including `0`.
    pub shared_solve_capacity: usize,
}

impl FleetSpec {
    /// A fleet of `racks` copies of `base` with auto worker count, no
    /// solar spread, and shared pretraining on.
    #[must_use]
    pub fn new(base: Scenario, racks: u32) -> Self {
        FleetSpec {
            base,
            racks,
            workers: 0,
            solar_scale_spread: 0.0,
            pretrain: true,
            shared_solve_capacity: DEFAULT_SHARED_SOLVE_CAPACITY,
        }
    }

    /// Validates the fleet parameters and the base scenario.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a rack-less fleet or a
    /// solar spread outside `[0, 1)`, and propagates base scenario
    /// validation failures.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.racks == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "fleet needs at least one rack".into(),
            });
        }
        if !(self.solar_scale_spread.is_finite() && (0.0..1.0).contains(&self.solar_scale_spread)) {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "solar scale spread must be in [0, 1), got {}",
                    self.solar_scale_spread
                ),
            });
        }
        self.base.validate()
    }

    /// Runs the fleet in lock-step on the work-stealing epoch scheduler.
    ///
    /// Rack batches are stolen by whichever of the `workers` pool
    /// threads is free; the rollover leader folds each finished epoch
    /// into streaming fleet accumulators in ascending rack order and
    /// drops the per-epoch records, so resident state stays O(racks).
    ///
    /// # Errors
    ///
    /// Propagates validation and simulation failures; when several racks
    /// fail in the same epoch, the lowest rack id's error wins
    /// (deterministically, whatever the worker count).
    pub fn run(&self) -> Result<FleetReport, CoreError> {
        self.validate()?;
        let substrate = self.substrate()?;
        let workers = self.resolved_workers();
        let sims = self.build_sims(&substrate)?;
        let sink = substrate.shared_sink.as_deref();
        let stream = run_lock_step_sched(sims, workers, sink)?;
        if let Some(sink) = sink {
            sink.flush_all();
        }
        Ok(self.assemble(stream, workers, substrate.solve_stats()))
    }

    /// Runs each rack to completion, one after another, with no worker
    /// pool and no lock-step — the plain reference the parallel engine
    /// must match byte for byte.
    ///
    /// # Errors
    ///
    /// Propagates validation and simulation failures.
    pub fn run_sequential(&self) -> Result<FleetReport, CoreError> {
        self.validate()?;
        let substrate = self.substrate()?;
        let reports = self
            .build_sims(&substrate)?
            .into_iter()
            .map(Simulation::run)
            .collect::<Result<Vec<_>, _>>()?;
        // Sequential racks buffer their whole event stream; one flush
        // reorders it into the same (epoch, rack) sequence the lock-step
        // loops produce.
        if let Some(sink) = &substrate.shared_sink {
            sink.flush_all();
        }
        Ok(self.reduce(reports, 1, substrate.solve_stats()))
    }

    /// The worker count this spec resolves to (before clamping to the
    /// rack count).
    #[must_use]
    pub fn resolved_workers(&self) -> usize {
        if self.workers == 0 {
            worker_count()
        } else {
            self.workers
        }
    }

    /// Builds the shared read-mostly substrate: one rack table, one
    /// solar trace, one optional pretrained curve store, one sink.
    fn substrate(&self) -> Result<Substrate, CoreError> {
        let rack = Arc::new(self.base.build_rack()?);
        // Shared synthesis; hit/miss counts are deliberately not
        // recorded into any ledger (solo path included) — the memo is
        // process-global state, and ledgers must depend only on the
        // spec. `solar::cache_stats` holds the process totals.
        let (solar, _cache_hit) = synthesize_shared(&self.base.solar_config()?)?;
        let profile_base = if self.pretrain {
            Some(Arc::new(pretrain_database(&rack, &self.base)?))
        } else {
            None
        };
        // Racks emit into this one sink concurrently; it buffers epoch
        // events and the run loops flush them in (epoch, rack id) order at
        // epoch boundaries, so the fleet event log's line order is a pure
        // function of the spec — identical at any worker count.
        let shared_sink: Option<Arc<SharedSink>> = match &self.base.telemetry {
            TelemetrySpec::Off => None,
            spec => Some(Arc::new(SharedSink::new(spec.build()?))),
        };
        let solve_cache = (self.shared_solve_capacity > 0)
            .then(|| Arc::new(SharedSolveCache::new(self.shared_solve_capacity)));
        Ok(Substrate {
            rack,
            solar,
            profile_base,
            shared_sink,
            solve_cache,
        })
    }

    /// Builds the per-rack simulations in rack order: owned state seeded
    /// from (base seed, rack id), shared substrate behind `Arc`s, and a
    /// per-rack telemetry registry in front of the one shared sink.
    fn build_sims(&self, substrate: &Substrate) -> Result<Vec<Simulation>, CoreError> {
        (0..self.racks)
            .map(|rack_id| {
                let mut scenario = self.base.clone();
                scenario.seed = mix_seed(self.base.seed, rack_id);
                scenario.telemetry = TelemetrySpec::Off;
                let telemetry = match &substrate.shared_sink {
                    Some(sink) => Telemetry::with_sink(Arc::clone(sink) as Arc<dyn TelemetrySink>),
                    None => Telemetry::disabled(),
                };
                let mut sim = Simulation::with_substrate(
                    scenario,
                    Arc::clone(&substrate.rack),
                    Arc::clone(&substrate.solar),
                    rack_solar_scale(self.solar_scale_spread, self.base.seed, rack_id),
                    rack_id,
                    telemetry,
                    substrate.profile_base.clone(),
                )?;
                if let Some(cache) = &substrate.solve_cache {
                    sim.set_shared_solve_cache(Arc::clone(cache));
                }
                Ok(sim)
            })
            .collect()
    }

    /// Assembles the fleet report from the streaming lock-step loop's
    /// output: columns already folded epoch-major in rack order, plus
    /// per-rack results harvested in rack order. Mirrors [`reduce`] —
    /// the record-vector reduction `run_sequential` still uses as the
    /// byte-identity oracle — add for add, in the same order.
    ///
    /// [`reduce`]: Self::reduce
    fn assemble(
        &self,
        stream: FleetStream,
        workers: usize,
        shared_solve: SharedSolveStats,
    ) -> FleetReport {
        let racks = stream.lanes.len();
        let epochs = stream.columns.into_fleet_records(&stream.template, racks);

        let mut ledger = RunLedger::default();
        for lane in &stream.lanes {
            ledger.merge(&lane.report.ledger);
        }

        let mut mean_epu = 0.0;
        let rack_summaries: Vec<RackSummary> = stream
            .lanes
            .iter()
            .enumerate()
            .map(|(rack_id, lane)| {
                mean_epu += lane.report.epu().value();
                RackSummary {
                    rack_id: rack_id as u32,
                    seed: mix_seed(self.base.seed, rack_id as u32),
                    solar_scale: rack_solar_scale(
                        self.solar_scale_spread,
                        self.base.seed,
                        rack_id as u32,
                    ),
                    mean_throughput: lane.mean_throughput(),
                    epu: lane.report.epu(),
                    grid_cost: lane.report.grid_cost,
                    battery_cycles: lane.report.battery_cycles,
                    unserved_energy_wh: lane.unserved_energy.value(),
                    degraded_epochs: lane.degraded_epochs,
                }
            })
            .collect();
        mean_epu /= racks.max(1) as f64;

        FleetReport {
            racks: self.racks,
            workers,
            epochs,
            rack_summaries,
            mean_epu: Ratio::saturating(mean_epu),
            ledger,
            shared_solve,
        }
    }

    /// Deterministic reduction: folds per-rack reports into the fleet
    /// report in rack order, whatever order the workers finished in.
    /// This record-vector form is retained as the sequential oracle's
    /// reduction ([`Self::run_sequential`]); the scheduler path streams
    /// the same fold via [`Self::assemble`].
    ///
    /// The per-epoch aggregation is a structure-of-arrays pass: one
    /// column per aggregate field, each rack's record stream scanned
    /// contiguously (rack-major). For any fixed (epoch, field) the
    /// additions still land in ascending rack order, so every float sum
    /// is the same fixed-order reduction as a record-at-a-time fold —
    /// bit-identical results, but the hot loop walks one rack's
    /// contiguous records instead of striding across N report vectors
    /// per epoch.
    fn reduce(
        &self,
        reports: Vec<RunReport>,
        workers: usize,
        shared_solve: SharedSolveStats,
    ) -> FleetReport {
        let epochs_per_rack = reports.first().map_or(0, |r| r.epochs.len());
        let mut columns = FleetColumns::zeroed(epochs_per_rack);
        for report in &reports {
            columns.fold_rack(&report.epochs);
        }
        let epochs = columns.into_records(&reports[0].epochs, reports.len());

        let mut ledger = RunLedger::default();
        for report in &reports {
            ledger.merge(&report.ledger);
        }

        let mut mean_epu = 0.0;
        let rack_summaries: Vec<RackSummary> = reports
            .iter()
            .enumerate()
            .map(|(rack_id, report)| {
                mean_epu += report.epu().value();
                RackSummary {
                    rack_id: rack_id as u32,
                    seed: mix_seed(self.base.seed, rack_id as u32),
                    solar_scale: rack_solar_scale(
                        self.solar_scale_spread,
                        self.base.seed,
                        rack_id as u32,
                    ),
                    mean_throughput: report.mean_throughput(),
                    epu: report.epu(),
                    grid_cost: report.grid_cost,
                    battery_cycles: report.battery_cycles,
                    unserved_energy_wh: report.unserved_energy.value(),
                    degraded_epochs: report.degraded_epochs,
                }
            })
            .collect();
        mean_epu /= reports.len().max(1) as f64;

        FleetReport {
            racks: self.racks,
            workers,
            epochs,
            rack_summaries,
            mean_epu: Ratio::saturating(mean_epu),
            ledger,
            shared_solve,
        }
    }
}

/// The shared read-mostly substrate every rack steps on.
struct Substrate {
    rack: Arc<Rack>,
    solar: Arc<PowerTrace>,
    profile_base: Option<Arc<PerfDatabase>>,
    shared_sink: Option<Arc<SharedSink>>,
    solve_cache: Option<Arc<SharedSolveCache>>,
}

impl Substrate {
    /// Counter snapshot of the fleet-wide solve cache (zeros when the
    /// cache is disabled) — scheduling-dependent provenance, like
    /// [`FleetReport::workers`].
    fn solve_stats(&self) -> SharedSolveStats {
        self.solve_cache
            .as_ref()
            .map_or_else(SharedSolveStats::default, |c| c.stats())
    }
}

/// One epoch of the whole fleet in columns, one `Vec` per aggregate
/// field — the SoA accumulator behind [`FleetSpec::reduce`]. SoC sums
/// live in unclamped `f64`s (a [`Ratio`] would saturate at 1.0 as soon
/// as two racks fold in); only the final mean becomes a `Ratio` again.
#[derive(Debug)]
struct FleetColumns {
    training_racks: Vec<u32>,
    degraded_racks: Vec<u32>,
    budget: Vec<Watts>,
    demand: Vec<Watts>,
    solar: Vec<Watts>,
    load: Vec<Watts>,
    battery_discharge: Vec<Watts>,
    battery_charge: Vec<Watts>,
    grid_load: Vec<Watts>,
    grid_charge: Vec<Watts>,
    unserved: Vec<Watts>,
    throughput: Vec<Throughput>,
    shed_servers: Vec<u32>,
    offline_servers: Vec<u32>,
    soc_sum: Vec<f64>,
}

impl FleetColumns {
    fn zeroed(epochs: usize) -> Self {
        FleetColumns {
            training_racks: vec![0; epochs],
            degraded_racks: vec![0; epochs],
            budget: vec![Watts::ZERO; epochs],
            demand: vec![Watts::ZERO; epochs],
            solar: vec![Watts::ZERO; epochs],
            load: vec![Watts::ZERO; epochs],
            battery_discharge: vec![Watts::ZERO; epochs],
            battery_charge: vec![Watts::ZERO; epochs],
            grid_load: vec![Watts::ZERO; epochs],
            grid_charge: vec![Watts::ZERO; epochs],
            unserved: vec![Watts::ZERO; epochs],
            throughput: vec![Throughput::ZERO; epochs],
            shed_servers: vec![0; epochs],
            offline_servers: vec![0; epochs],
            soc_sum: vec![0.0; epochs],
        }
    }

    /// Folds one rack's record for epoch slot `e` into the columns.
    ///
    /// Bit-identity invariant: for any fixed (epoch, field) cell the
    /// additions must land in ascending rack order. Both callers honour
    /// it — [`fold_rack`](Self::fold_rack) visits racks in ascending
    /// order rack-major, and the scheduler's rollover leader folds
    /// batches (contiguous ascending rack ranges) in ascending batch
    /// order epoch-major — so the two fold schedules produce the same
    /// fixed-order f64 reduction per cell, bit for bit.
    fn fold_record(&mut self, e: usize, rec: &EpochRecord) {
        self.training_racks[e] += u32::from(rec.training);
        self.degraded_racks[e] += u32::from(rec.degraded);
        self.budget[e] += rec.budget;
        self.demand[e] += rec.demand;
        self.solar[e] += rec.solar;
        self.load[e] += rec.load;
        self.battery_discharge[e] += rec.battery_discharge;
        self.battery_charge[e] += rec.battery_charge;
        self.grid_load[e] += rec.grid_load;
        self.grid_charge[e] += rec.grid_charge;
        self.unserved[e] += rec.unserved;
        self.throughput[e] += rec.throughput;
        self.shed_servers[e] += rec.shed_servers;
        self.offline_servers[e] += rec.offline_servers;
        self.soc_sum[e] += rec.soc.value();
    }

    /// Folds one rack's full record stream into the columns. Callers
    /// fold racks in ascending rack order: that keeps every per-epoch
    /// float sum a fixed-order reduction.
    fn fold_rack(&mut self, epochs: &[EpochRecord]) {
        for (e, rec) in epochs.iter().enumerate() {
            self.fold_record(e, rec);
        }
    }

    /// Assembles the columns back into per-epoch records. `template`
    /// supplies the per-slot epoch id and time (lock-step: identical for
    /// every rack); `racks` divides the SoC sums into means.
    fn into_records(self, template: &[EpochRecord], racks: usize) -> Vec<FleetEpochRecord> {
        let pairs: Vec<(EpochId, SimTime)> = template.iter().map(|t| (t.epoch, t.time)).collect();
        self.into_fleet_records(&pairs, racks)
    }

    /// [`into_records`](Self::into_records) over a bare (epoch id, time)
    /// template — the form the streaming fold captures, since it never
    /// retains whole [`EpochRecord`]s.
    fn into_fleet_records(
        self,
        template: &[(EpochId, SimTime)],
        racks: usize,
    ) -> Vec<FleetEpochRecord> {
        template
            .iter()
            .enumerate()
            .map(|(e, &(epoch, time))| FleetEpochRecord {
                epoch,
                time,
                training_racks: self.training_racks[e],
                degraded_racks: self.degraded_racks[e],
                budget: self.budget[e],
                demand: self.demand[e],
                solar: self.solar[e],
                load: self.load[e],
                battery_discharge: self.battery_discharge[e],
                battery_charge: self.battery_charge[e],
                grid_load: self.grid_load[e],
                grid_charge: self.grid_charge[e],
                unserved: self.unserved[e],
                throughput: self.throughput[e],
                shed_servers: self.shed_servers[e],
                offline_servers: self.offline_servers[e],
                mean_soc: Ratio::saturating(self.soc_sum[e] / racks as f64),
            })
            .collect()
    }
}

/// Shared fleet event sink: every rack's events funnel into one JSONL
/// stream (or caller sink) while registries stay per-rack.
///
/// Epoch events are buffered keyed by (epoch, rack id) and forwarded in
/// key order when the run loops call [`flush_through`] at epoch
/// boundaries (all of epoch *e*'s events exist before any worker passes
/// the barrier into *e + 1*), so the emitted line order is a pure
/// function of the spec at any worker count. Lock-step runs hold at most
/// one epoch of events; the sequential reference buffers the whole run
/// and flushes once. Spans carry no rack id and are forwarded
/// immediately (the JSONL sink drops them; ledgers don't depend on
/// order).
///
/// [`flush_through`]: SharedSink::flush_through
struct SharedSink {
    inner: Telemetry,
    pending: Mutex<BTreeMap<(u64, u32), EpochEvent>>,
}

impl SharedSink {
    fn new(inner: Telemetry) -> Self {
        SharedSink {
            inner,
            pending: Mutex::new(BTreeMap::new()),
        }
    }

    /// Forwards every buffered event with `event.epoch <= epoch`, in
    /// (epoch, rack id) order. Sound to call once all racks have stepped
    /// through `epoch`.
    fn flush_through(&self, epoch: u64) {
        let ready: Vec<EpochEvent> = {
            let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
            let rest = pending.split_off(&(epoch + 1, 0));
            std::mem::replace(&mut *pending, rest)
                .into_values()
                .collect()
        };
        let sink = self.inner.sink();
        for event in &ready {
            sink.record_epoch(event);
        }
    }

    /// Forwards everything still buffered, in (epoch, rack id) order.
    fn flush_all(&self) {
        let ready: Vec<EpochEvent> = {
            let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut *pending).into_values().collect()
        };
        let sink = self.inner.sink();
        for event in &ready {
            sink.record_epoch(event);
        }
    }
}

impl Drop for SharedSink {
    fn drop(&mut self) {
        // Backstop for aborted runs: whatever ordered prefix is buffered
        // still reaches the sink.
        self.flush_all();
    }
}

impl std::fmt::Debug for SharedSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSink").finish_non_exhaustive()
    }
}

impl TelemetrySink for SharedSink {
    fn enabled(&self) -> bool {
        self.inner.sink_enabled()
    }

    fn record_span(&self, span: &greenhetero_core::telemetry::SpanRecord) {
        self.inner.sink().record_span(span);
    }

    fn record_epoch(&self, event: &EpochEvent) {
        self.pending
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert((event.epoch.raw(), event.rack_id), event.clone());
    }
}

/// SplitMix64-style seed mixer: spreads (base seed, rack id) over the
/// whole u64 space so neighbouring racks get uncorrelated RNG streams.
/// Depends only on its inputs — never on worker identity.
fn mix_seed(base: u64, rack_id: u32) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(rack_id).wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The rack's multiplier on the shared solar feed: exactly `1.0` when
/// `spread == 0`, otherwise a deterministic draw from
/// `[1 - spread, 1 + spread)` hashed from (base seed, rack id).
fn rack_solar_scale(spread: f64, base_seed: u64, rack_id: u32) -> f64 {
    if spread == 0.0 {
        return 1.0;
    }
    let hash = mix_seed(base_seed ^ 0x534F_4C41_5243_414C, rack_id);
    // 53 high bits → a uniform double in [0, 1).
    let unit = (hash >> 11) as f64 / (1u64 << 53) as f64;
    1.0 + spread * (2.0 * unit - 1.0)
}

/// Builds the shared noise-free profiling database: one training sweep
/// per distinct (configuration, workload) pair in the rack, exactly the
/// sweep the engine's training epoch would run, minus meter noise.
///
/// Public so the serve daemon can pretrain once and share the result
/// across sessions through a `CowDatabase`, the same way the fleet loop
/// does.
///
/// # Errors
///
/// Propagates training-insertion failures from the profile database.
pub fn pretrain_database(rack: &Rack, base: &Scenario) -> Result<PerfDatabase, CoreError> {
    let mut db = PerfDatabase::new();
    let samples_per_training = base.controller.samples_per_training() as usize;
    let intensity = base.intensity.at(SimTime::ZERO);
    for (group_idx, group) in rack.groups().iter().enumerate() {
        let (config, workload) = (group.platform.id(), group.workload.id());
        if db.contains(config, workload) {
            continue;
        }
        let envelope = group.server().truth().envelope();
        let sweep = rack.training_sweep(group_idx, samples_per_training, intensity);
        let samples: Vec<_> = sweep
            .iter()
            .enumerate()
            .map(|(i, s)| {
                greenhetero_core::database::ProfileSample::new(
                    s.power,
                    s.throughput,
                    SimTime::ZERO + base.controller.sample_period * i as u64,
                )
            })
            .collect();
        db.insert_training(config, workload, envelope, &samples)?;
    }
    Ok(db)
}

/// One rack riding through the work-stealing epoch loop: its simulation,
/// its streaming per-rack accumulators (mirroring the formulas
/// `RunReport` computes from full record vectors, in the same epoch
/// order, so the results are bit-identical), the record awaiting the
/// next rollover fold, and its error slot.
struct RackLane {
    rack_id: u32,
    sim: Simulation,
    epu: EpuAccumulator,
    steady_sum: f64,
    steady_count: u64,
    unserved_energy: WattHours,
    degraded_epochs: u64,
    pending: Option<EpochRecord>,
    error: Option<CoreError>,
}

/// A contiguous ascending run of rack lanes — the unit of stealing.
struct FleetBatch {
    lanes: Vec<RackLane>,
}

/// One rack's end-of-run harvest from the streaming loop.
struct RackResult {
    report: RunReport,
    steady_sum: f64,
    steady_count: u64,
    unserved_energy: WattHours,
    degraded_epochs: u64,
}

impl RackResult {
    /// Streaming mirror of [`RunReport::mean_throughput`]: the same
    /// epoch-order left-fold sum over non-training epochs, divided by
    /// their count — bit-identical to the record-vector form.
    fn mean_throughput(&self) -> Throughput {
        if self.steady_count == 0 {
            return Throughput::ZERO;
        }
        Throughput::new(self.steady_sum / self.steady_count as f64)
    }
}

/// Everything the streaming lock-step loop hands back for assembly.
struct FleetStream {
    columns: FleetColumns,
    template: Vec<(EpochId, SimTime)>,
    lanes: Vec<RackResult>,
}

/// Lock-step on the work-stealing epoch scheduler: contiguous rack
/// batches are stolen within each epoch by whichever worker is free,
/// and the rollover leader folds the finished epoch's records into the
/// fleet columns in ascending batch (= rack) order, flushes the shared
/// sink through that epoch, and drops the records — streaming the whole
/// reduction so resident state is O(racks), not O(racks × epochs).
///
/// A failing rack stops its own batch mid-epoch and raises the abort:
/// the run ends once the current epoch's dependency counter drains, the
/// failed epoch is neither folded nor flushed (the `SharedSink` drop
/// backstop still emits the ordered prefix of earlier epochs), and the
/// first error in rack order is returned — independent of worker count.
fn run_lock_step_sched(
    sims: Vec<Simulation>,
    workers: usize,
    sink: Option<&SharedSink>,
) -> Result<FleetStream, CoreError> {
    let total = sims.len();
    let workers = workers.clamp(1, total.max(1));
    let epochs_total = sims.first().map_or(0, Simulation::epochs_total);
    let Some(epoch_len) = sims.first().map(|s| s.scenario().controller.epoch_len) else {
        return Ok(FleetStream {
            columns: FleetColumns::zeroed(0),
            template: Vec::new(),
            lanes: Vec::new(),
        });
    };

    // ~4 batches per worker: fine enough for stealing to balance
    // unequal rack costs, coarse enough to amortize dispatch.
    let chunk = total.div_ceil((workers * 4).max(1)).max(1);
    let mut batches: Vec<FleetBatch> = Vec::with_capacity(total.div_ceil(chunk));
    let mut lanes: Vec<RackLane> = Vec::with_capacity(chunk);
    for (idx, sim) in sims.into_iter().enumerate() {
        lanes.push(RackLane {
            rack_id: idx as u32,
            sim,
            epu: EpuAccumulator::new(),
            steady_sum: 0.0,
            steady_count: 0,
            unserved_energy: WattHours::ZERO,
            degraded_epochs: 0,
            pending: None,
            error: None,
        });
        if lanes.len() == chunk {
            batches.push(FleetBatch {
                lanes: std::mem::take(&mut lanes),
            });
        }
    }
    if !lanes.is_empty() {
        batches.push(FleetBatch { lanes });
    }

    let fold_state = Mutex::new((
        FleetColumns::zeroed(epochs_total as usize),
        Vec::with_capacity(epochs_total as usize),
    ));

    let step = |batch: &mut FleetBatch, _epoch: u64| -> bool {
        for lane in &mut batch.lanes {
            match lane.sim.step_epoch_record(&mut lane.epu) {
                Ok(rec) => {
                    // Per-rack streaming sums: same ops, same epoch
                    // order as `Simulation::finish` over full records.
                    if !rec.training {
                        lane.steady_sum += rec.throughput.value();
                        lane.steady_count += 1;
                    }
                    lane.unserved_energy += rec.unserved * epoch_len;
                    lane.degraded_epochs += u64::from(rec.degraded);
                    lane.pending = Some(rec);
                }
                Err(e) => {
                    lane.error = Some(e);
                    return false;
                }
            }
        }
        true
    };
    // Called only by the rollover leader, batches in ascending order —
    // the lock is uncontended sequencing, not synchronization.
    let fold = |epoch: u64, batch: &mut FleetBatch| {
        let mut guard = fold_state.lock().unwrap_or_else(PoisonError::into_inner);
        let (columns, template) = &mut *guard;
        for lane in &mut batch.lanes {
            if let Some(rec) = lane.pending.take() {
                if lane.rack_id == 0 {
                    template.push((rec.epoch, rec.time));
                }
                columns.fold_record(epoch as usize, &rec);
            }
        }
    };
    let epoch_done = |epoch: u64| {
        if let Some(sink) = sink {
            sink.flush_through(epoch);
        }
    };

    let batches = run_epoch_batches(workers, epochs_total, batches, &step, &fold, &epoch_done);

    let mut done: Vec<RackLane> = batches.into_iter().flat_map(|b| b.lanes).collect();
    // First error in rack order wins, independent of worker count.
    for lane in &mut done {
        if let Some(e) = lane.error.take() {
            return Err(e);
        }
    }
    let (columns, template) = fold_state
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    let lanes = done
        .into_iter()
        .map(|lane| RackResult {
            // Record-derived report fields were computed streaming; the
            // empty-record finish harvests the rest (grid totals,
            // battery cycles, ledger, EPU) from the simulation state.
            report: lane.sim.finish(Vec::new(), lane.epu),
            steady_sum: lane.steady_sum,
            steady_count: lane.steady_count,
            unserved_energy: lane.unserved_energy,
            degraded_epochs: lane.degraded_epochs,
        })
        .collect();
    Ok(FleetStream {
        columns,
        template,
        lanes,
    })
}

/// One epoch of the whole fleet: per-rack records summed in rack order.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetEpochRecord {
    /// The epoch index (shared by every rack — lock-step).
    pub epoch: EpochId,
    /// Start time of the epoch.
    pub time: SimTime,
    /// Racks that ran a training epoch.
    pub training_racks: u32,
    /// Racks that ran degraded.
    pub degraded_racks: u32,
    /// Fleet-wide power budget (sum over racks).
    pub budget: Watts,
    /// Fleet-wide unconstrained demand.
    pub demand: Watts,
    /// Fleet-wide solar generation.
    pub solar: Watts,
    /// Fleet-wide measured server draw.
    pub load: Watts,
    /// Fleet-wide battery discharge into load.
    pub battery_discharge: Watts,
    /// Fleet-wide battery charging power.
    pub battery_charge: Watts,
    /// Fleet-wide grid power serving load.
    pub grid_load: Watts,
    /// Fleet-wide grid power charging batteries.
    pub grid_charge: Watts,
    /// Fleet-wide planned power the sources could not deliver.
    pub unserved: Watts,
    /// Fleet-wide measured throughput.
    pub throughput: Throughput,
    /// Servers shed fleet-wide.
    pub shed_servers: u32,
    /// Servers offline fleet-wide.
    pub offline_servers: u32,
    /// Mean battery state of charge across racks.
    pub mean_soc: Ratio,
}

/// One rack's end-of-run summary within a fleet report.
#[derive(Debug, Clone, PartialEq)]
pub struct RackSummary {
    /// The rack's fleet index.
    pub rack_id: u32,
    /// The seed its owned state (meters, RNGs) derived from.
    pub seed: u64,
    /// Its multiplier on the shared solar feed.
    pub solar_scale: f64,
    /// Mean steady-state throughput.
    pub mean_throughput: Throughput,
    /// Effective power utilization (Eq. 1).
    pub epu: Ratio,
    /// Grid bill under the tariff.
    pub grid_cost: f64,
    /// Battery cycles consumed.
    pub battery_cycles: f64,
    /// Total undelivered planned energy, in watt-hours.
    pub unserved_energy_wh: f64,
    /// Epochs the rack ran degraded.
    pub degraded_epochs: u64,
}

/// The deterministic reduction of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Racks simulated.
    pub racks: u32,
    /// Workers the lock-step loop ran on (1 for the sequential
    /// reference) — reported for provenance; never affects the numbers.
    pub workers: usize,
    /// Fleet-wide per-epoch aggregates, summed in rack order.
    pub epochs: Vec<FleetEpochRecord>,
    /// Per-rack summaries, in rack order.
    pub rack_summaries: Vec<RackSummary>,
    /// Mean per-rack effective power utilization.
    pub mean_epu: Ratio,
    /// Per-rack ledgers merged in rack order: counters summed,
    /// histograms combined (quantiles count-weighted).
    pub ledger: RunLedger,
    /// Fleet-wide [`SharedSolveCache`] counter totals (zeros when the
    /// cache is disabled). Like `workers`, this is provenance: *which*
    /// rack pays a cold solve is scheduling-dependent, so these totals
    /// may differ across worker counts and are excluded from the
    /// byte-compared artifacts (CSV, ledger, events).
    pub shared_solve: SharedSolveStats,
}

impl FleetReport {
    /// Total rack-epochs stepped.
    #[must_use]
    pub fn rack_epochs(&self) -> u64 {
        u64::from(self.racks) * self.epochs.len() as u64
    }

    /// Fleet mean throughput over steady epochs (training epochs carry
    /// partial fleets, so they are excluded like single-rack reports do).
    #[must_use]
    pub fn mean_throughput(&self) -> Throughput {
        let steady: Vec<&FleetEpochRecord> = self
            .epochs
            .iter()
            .filter(|e| e.training_racks == 0)
            .collect();
        if steady.is_empty() {
            return Throughput::ZERO;
        }
        let sum: f64 = steady.iter().map(|e| e.throughput.value()).sum();
        Throughput::new(sum / steady.len() as f64)
    }

    /// Writes the fleet epoch series as CSV, full float precision (the
    /// shortest round-trip representation), so byte equality of two CSVs
    /// is bit equality of two runs.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`.
    pub fn write_csv<W: std::io::Write>(&self, mut writer: W) -> std::io::Result<()> {
        writeln!(
            writer,
            "epoch,seconds,training_racks,degraded_racks,budget_w,demand_w,solar_w,load_w,\
             battery_discharge_w,battery_charge_w,grid_load_w,grid_charge_w,unserved_w,\
             throughput,shed,offline,mean_soc"
        )?;
        for e in &self.epochs {
            writeln!(
                writer,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                e.epoch.raw(),
                e.time.as_secs(),
                e.training_racks,
                e.degraded_racks,
                e.budget.value(),
                e.demand.value(),
                e.solar.value(),
                e.load.value(),
                e.battery_discharge.value(),
                e.battery_charge.value(),
                e.grid_load.value(),
                e.grid_charge.value(),
                e.unserved.value(),
                e.throughput.value(),
                e.shed_servers,
                e.offline_servers,
                e.mean_soc.value(),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenhetero_core::policies::PolicyKind;

    fn tiny_fleet(racks: u32) -> FleetSpec {
        FleetSpec::new(
            Scenario {
                servers_per_type: 1,
                days: 1,
                ..Scenario::paper_runtime(PolicyKind::GreenHetero)
            },
            racks,
        )
    }

    #[test]
    fn seed_mixing_is_rack_unique_and_stable() {
        let a = mix_seed(42, 0);
        assert_eq!(a, mix_seed(42, 0));
        let seeds: std::collections::HashSet<u64> = (0..1000).map(|r| mix_seed(42, r)).collect();
        assert_eq!(seeds.len(), 1000, "rack seeds must not collide");
        assert_ne!(mix_seed(42, 1), mix_seed(43, 1));
    }

    #[test]
    fn zero_spread_scale_is_exactly_one() {
        for rack in 0..32 {
            assert!(rack_solar_scale(0.0, 42, rack).to_bits() == 1.0f64.to_bits());
        }
    }

    #[test]
    fn spread_scales_stay_in_band_and_vary() {
        let scales: Vec<f64> = (0..64).map(|r| rack_solar_scale(0.2, 42, r)).collect();
        for s in &scales {
            assert!((0.8..1.2).contains(s), "scale {s} out of band");
        }
        let distinct: std::collections::HashSet<u64> = scales.iter().map(|s| s.to_bits()).collect();
        assert!(distinct.len() > 32, "scales should vary across racks");
    }

    #[test]
    fn validation_rejects_bad_fleets() {
        assert!(tiny_fleet(0).validate().is_err());
        let mut f = tiny_fleet(2);
        f.solar_scale_spread = 1.5;
        assert!(f.validate().is_err());
        let mut f = tiny_fleet(2);
        f.base.days = 0;
        assert!(f.validate().is_err());
        assert!(tiny_fleet(2).validate().is_ok());
    }

    #[test]
    fn pretrained_fleet_skips_training_epochs() {
        let report = tiny_fleet(2).run().unwrap();
        assert_eq!(report.epochs.len(), 96);
        assert_eq!(
            report.epochs[0].training_racks, 0,
            "shared pretraining must preempt per-rack training"
        );
    }

    #[test]
    fn unpretrained_fleet_trains_every_rack() {
        let mut spec = tiny_fleet(2);
        spec.pretrain = false;
        let report = spec.run().unwrap();
        assert_eq!(report.epochs[0].training_racks, 2);
    }

    #[test]
    fn fleet_sums_scale_with_rack_count() {
        let one = tiny_fleet(1).run().unwrap();
        let three = tiny_fleet(3).run().unwrap();
        assert_eq!(three.racks, 3);
        assert_eq!(three.rack_summaries.len(), 3);
        assert_eq!(three.rack_epochs(), 3 * 96);
        // Three racks of the same template draw roughly (not exactly —
        // seeds differ) three times the power of one.
        let ratio = three.epochs[40].load.value() / one.epochs[40].load.value();
        assert!((2.5..3.5).contains(&ratio), "load ratio {ratio}");
    }

    #[test]
    fn fleet_mean_soc_is_a_true_mean_not_a_saturated_sum() {
        let one = tiny_fleet(1).run().unwrap();
        let three = tiny_fleet(3).run().unwrap();
        // Batteries start full: at epoch 0 every rack sits near the same
        // SoC, so the 3-rack mean must match the 1-rack mean — a clamped
        // sum-of-SoCs divided by 3 would report ~0.33 instead.
        let (a, b) = (
            one.epochs[0].mean_soc.value(),
            three.epochs[0].mean_soc.value(),
        );
        assert!((a - b).abs() < 0.05, "epoch-0 mean SoC {b} vs 1-rack {a}");
        // A clamped accumulator caps the reported mean at 1/racks.
        assert!(
            three.epochs.iter().any(|e| e.mean_soc.value() > 0.34),
            "3-rack mean SoC never left the saturated-sum band"
        );
    }

    #[test]
    fn rack_summaries_are_seed_distinct() {
        let report = tiny_fleet(3).run().unwrap();
        let seeds: std::collections::HashSet<u64> =
            report.rack_summaries.iter().map(|r| r.seed).collect();
        assert_eq!(seeds.len(), 3);
        for summary in &report.rack_summaries {
            assert!(summary.mean_throughput.value() > 0.0);
            assert!(summary.epu.value() > 0.0);
        }
    }

    #[test]
    fn csv_is_one_row_per_epoch() {
        let report = tiny_fleet(2).run().unwrap();
        let mut buf = Vec::new();
        report.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 97);
        assert!(text.starts_with("epoch,seconds,training_racks,"));
    }
}
