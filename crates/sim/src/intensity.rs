//! Offered-load intensity profiles.
//!
//! The runtime experiments (Figs. 6, 8, 11) drive SPECjbb with "a typical
//! datacenter server rack power pattern": load swings diurnally between a
//! night trough and an afternoon peak. Batch experiments run at constant
//! full intensity.

use greenhetero_core::types::{Ratio, SimTime};
use serde::{Deserialize, Serialize};

/// How the offered load evolves over simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum IntensityProfile {
    /// Constant offered load (batch workloads saturate at 1.0).
    Constant(Ratio),
    /// Diurnal swing between `trough` (pre-dawn) and `peak` (afternoon),
    /// the rack-demand shape of the paper's Fig. 6.
    Diurnal {
        /// Intensity at the nightly trough.
        trough: Ratio,
        /// Intensity at the afternoon peak.
        peak: Ratio,
    },
}

impl IntensityProfile {
    /// Full load, always — the batch-workload default.
    pub const SATURATED: IntensityProfile = IntensityProfile::Constant(Ratio::ONE);

    /// The paper's datacenter pattern: a 65 %–100 % diurnal swing (sized
    /// so the night load lands near 1 kW on the Comb1 rack, giving the
    /// ≈4-hour Case C battery ride-through of Fig. 8).
    #[must_use]
    pub fn datacenter_diurnal() -> Self {
        IntensityProfile::Diurnal {
            trough: Ratio::saturating(0.65),
            peak: Ratio::ONE,
        }
    }

    /// The offered-load intensity at time `t`.
    #[must_use]
    pub fn at(&self, t: SimTime) -> Ratio {
        match *self {
            IntensityProfile::Constant(r) => r,
            IntensityProfile::Diurnal { trough, peak } => {
                let shape = diurnal_shape(t.hour_of_day());
                Ratio::saturating(trough.value() + (peak.value() - trough.value()) * shape)
            }
        }
    }
}

/// Normalized diurnal shape (0 at ~04:00, 1 at ~14:00), matching the rack
/// load pattern of Wang et al. [13] the paper illustrates in Fig. 6.
fn diurnal_shape(hour: f64) -> f64 {
    use std::f64::consts::PI;
    let raw = 0.5 + 0.5 * ((hour - 14.0) / 24.0 * 2.0 * PI).cos();
    raw.powf(0.7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_profile() {
        let p = IntensityProfile::SATURATED;
        assert_eq!(p.at(SimTime::ZERO), Ratio::ONE);
        assert_eq!(p.at(SimTime::from_hours(13)), Ratio::ONE);
    }

    #[test]
    fn diurnal_swings_between_bounds() {
        let p = IntensityProfile::datacenter_diurnal();
        // The cosine trough sits 12 h opposite the 14:00 peak, at 02:00.
        let night = p.at(SimTime::from_hours(2));
        let afternoon = p.at(SimTime::from_hours(14));
        assert!(night < afternoon);
        assert!((afternoon.value() - 1.0).abs() < 1e-9);
        assert!((night.value() - 0.65).abs() < 1e-6);
        // Every hour lies within the configured band.
        for h in 0..24 {
            let v = p.at(SimTime::from_hours(h)).value();
            assert!((0.65..=1.0).contains(&v), "hour {h}: {v}");
        }
    }

    #[test]
    fn pattern_repeats_daily() {
        let p = IntensityProfile::datacenter_diurnal();
        assert_eq!(p.at(SimTime::from_hours(10)), p.at(SimTime::from_hours(34)));
    }
}
