//! The discrete-time simulation engine: the paper's prototype, in silico.
//!
//! Each 15-minute epoch the engine (playing the roles of Monitor and
//! plant) feeds the controller the battery view and rack composition,
//! receives its decision, applies it to the simulated rack, dispatches the
//! physical power flows through the PDU, and reports the observations
//! back — exactly the loop of the paper's Fig. 4.

use std::sync::Arc;
use std::time::{Duration, Instant};

use greenhetero_core::controller::{Controller, EpochDecision, GroupFeedback, RackSpec};
use greenhetero_core::database::{PerfDatabase, ProfileSample};
use greenhetero_core::error::CoreError;
use greenhetero_core::metrics::EpuAccumulator;
use greenhetero_core::policies::PolicyKind;
use greenhetero_core::solver::SharedSolveCache;
use greenhetero_core::telemetry::{names, EpochEvent, Histogram, SpanRecord, Telemetry};
use greenhetero_core::types::{Ratio, SimTime, Throughput, WattHours, Watts};
use greenhetero_power::battery::BatteryBank;
use greenhetero_power::gauges::FlowGauges;
use greenhetero_power::grid::GridFeed;
use greenhetero_power::meter::PowerMeter;
use greenhetero_power::pdu::{Pdu, PowerFlows};
use greenhetero_power::solar::synthesize_shared;
use greenhetero_power::trace::PowerTrace;
use greenhetero_server::rack::Rack;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::report::{EpochRecord, RunReport};
use crate::scenario::Scenario;

/// A runnable simulation instance.
#[derive(Debug)]
pub struct Simulation {
    scenario: Scenario,
    controller: Controller,
    rack: Arc<Rack>,
    rack_spec: RackSpec,
    bank: BatteryBank,
    grid: GridFeed,
    pdu: Pdu,
    solar: Arc<PowerTrace>,
    /// Per-rack multiplier on the shared solar feed (`1.0` for solo
    /// runs — multiplying by exactly `1.0` is bit-transparent).
    solar_scale: f64,
    /// This instance's rack index within a fleet (`0` for solo runs).
    rack_id: u32,
    meter: PowerMeter,
    perf_rng: StdRng,
    time: SimTime,
    /// Scheduled battery string failures, with a fired flag per event.
    battery_faults: Vec<(SimTime, Ratio, bool)>,
    telemetry: Telemetry,
    flow_gauges: FlowGauges,
    epoch_wall_seconds: Arc<Histogram>,
    enforce_seconds: Arc<Histogram>,
    queue_wait_seconds: Arc<Histogram>,
}

impl Simulation {
    /// Builds a simulation from a scenario.
    ///
    /// # Errors
    ///
    /// Propagates scenario validation and construction failures.
    pub fn new(scenario: Scenario) -> Result<Self, CoreError> {
        scenario.validate()?;
        let rack = Arc::new(scenario.build_rack()?);
        // Solar memo hits/misses are process-global state (the same
        // scenario run twice is a miss then a hit), so they are never
        // recorded into the per-run registry — a ledger must be a pure
        // function of the scenario. `solar::cache_stats` has the totals.
        let (solar, _cache_hit) = synthesize_shared(&scenario.solar_config()?)?;
        let telemetry = scenario.telemetry.build()?;
        Simulation::with_substrate(scenario, rack, solar, 1.0, 0, telemetry, None)
    }

    /// Builds a simulation on a pre-built, possibly shared substrate: the
    /// fleet entry point. `solar_scale` multiplies the shared feed
    /// (`1.0` is bit-transparent), `rack_id` tags telemetry, and
    /// `profile_base` (when given) becomes the controller's shared
    /// read-through profiling database.
    ///
    /// The scenario must already be validated; the caller owns telemetry
    /// construction so a fleet can pair per-rack registries with one
    /// shared sink, and a serve daemon can host many sessions on one
    /// rack model and one solar trace.
    ///
    /// # Errors
    ///
    /// Propagates controller, bank, and grid construction failures.
    pub fn with_substrate(
        scenario: Scenario,
        rack: Arc<Rack>,
        solar: Arc<PowerTrace>,
        solar_scale: f64,
        rack_id: u32,
        telemetry: Telemetry,
        profile_base: Option<Arc<PerfDatabase>>,
    ) -> Result<Self, CoreError> {
        let rack_spec = rack.controller_spec()?;
        let mut controller = Controller::new(scenario.controller.clone(), scenario.policy)?;
        controller.set_telemetry(telemetry.clone());
        if let Some(base) = profile_base {
            controller.set_profile_base(base);
        }
        let flow_gauges = FlowGauges::register(telemetry.registry());
        let epoch_wall_seconds = telemetry.registry().histogram(names::EPOCH_WALL_SECONDS);
        let enforce_seconds = telemetry.registry().histogram(names::ENFORCE_SECONDS);
        let queue_wait_seconds = telemetry
            .registry()
            .histogram(names::RUNNER_QUEUE_WAIT_SECONDS);
        let bank = BatteryBank::new(scenario.battery)?;
        let grid = GridFeed::new(scenario.grid_budget, scenario.tariff)?;
        let meter = PowerMeter::new(scenario.meter_noise, scenario.seed ^ 0x4d45_5445);
        let perf_rng = StdRng::seed_from_u64(scenario.seed ^ 0x5045_5246);
        let battery_faults = scenario
            .faults
            .battery_failures()
            .into_iter()
            .map(|(at, surviving)| (at, surviving, false))
            .collect();
        Ok(Simulation {
            scenario,
            controller,
            rack,
            rack_spec,
            bank,
            grid,
            pdu: Pdu::new(),
            solar,
            solar_scale,
            rack_id,
            meter,
            perf_rng,
            time: SimTime::ZERO,
            battery_faults,
            telemetry,
            flow_gauges,
            epoch_wall_seconds,
            enforce_seconds,
            queue_wait_seconds,
        })
    }

    /// Attaches a cross-rack [`SharedSolveCache`] to the controller: racks
    /// (or serve sessions) on a shared substrate that face bit-identical
    /// allocation problems pay one cold solve per epoch and reuse the
    /// answer. Call before the first epoch is stepped. Purely an
    /// acceleration — all records, ledgers, and events are bit-identical
    /// with the cache attached, detached, or resized
    /// (`crates/sim/tests/fleet.rs` proves it).
    pub fn set_shared_solve_cache(&mut self, shared: Arc<SharedSolveCache>) {
        self.controller.set_shared_solve_cache(shared);
    }

    /// The scenario being simulated.
    #[must_use]
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The run's telemetry handle (shared with the controller).
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Records how long this run sat in a sweep runner's queue before a
    /// worker picked it up.
    pub fn note_queue_wait(&self, wait: Duration) {
        self.queue_wait_seconds.record_duration(wait);
    }

    /// Runs the full scenario and reports.
    ///
    /// # Errors
    ///
    /// Propagates controller failures (these indicate bugs, not expected
    /// run-time conditions).
    pub fn run(mut self) -> Result<RunReport, CoreError> {
        let epochs_total = self.epochs_total();
        let mut records = Vec::with_capacity(epochs_total as usize);
        let mut epu = EpuAccumulator::new();

        for _ in 0..epochs_total {
            self.step_epoch(&mut records, &mut epu)?;
        }

        Ok(self.finish(records, epu))
    }

    /// How many epochs the scenario spans.
    pub(crate) fn epochs_total(&self) -> u64 {
        (self.scenario.days * 86_400) / self.controller.config().epoch_len.as_secs()
    }

    /// Aggregates stepped records into the final report, consuming the
    /// simulation. The lock-step fleet loop steps epochs itself and calls
    /// this at the end; [`Simulation::run`] is exactly step-all + finish.
    pub(crate) fn finish(self, records: Vec<EpochRecord>, epu: EpuAccumulator) -> RunReport {
        let epoch_len = self.controller.config().epoch_len;
        let mut unserved_energy = WattHours::ZERO;
        for e in &records {
            unserved_energy += e.unserved * epoch_len;
        }
        let degraded_epochs = records.iter().filter(|e| e.degraded).count() as u64;
        // Recovery latency: epochs from the last injected fault clearing to
        // the first subsequent non-degraded epoch.
        let recovery_latency_epochs = self.scenario.faults.last_clear().and_then(|clear| {
            let first = records.iter().position(|e| e.time >= clear)?;
            records[first..]
                .iter()
                .position(|e| !e.degraded)
                .map(|d| d as u64)
        });

        RunReport {
            epochs: records,
            epu,
            grid_energy: self.grid.energy_drawn(),
            grid_peak: self.grid.peak_draw(),
            grid_cost: self.grid.cost(),
            battery_cycles: self.bank.cycles(),
            unserved_energy,
            degraded_epochs,
            recovery_latency_epochs,
            ledger: self.telemetry.ledger(),
        }
    }

    /// Steps one epoch and appends its record to `records` — the
    /// record-accumulating form of [`Self::step_epoch_record`] used by
    /// batch runs and the replayable stepper.
    pub(crate) fn step_epoch(
        &mut self,
        records: &mut Vec<EpochRecord>,
        epu: &mut EpuAccumulator,
    ) -> Result<(), CoreError> {
        let record = self.step_epoch_record(epu)?;
        records.push(record);
        Ok(())
    }

    /// Steps one epoch and *returns* its record instead of storing it,
    /// so fleet-scale callers can fold the record into streaming
    /// accumulators and drop it — O(racks) transient state instead of
    /// O(racks × epochs) resident record vectors.
    pub(crate) fn step_epoch_record(
        &mut self,
        epu: &mut EpuAccumulator,
    ) -> Result<EpochRecord, CoreError> {
        let epoch_started = Instant::now();
        let epoch_len = self.controller.config().epoch_len;
        let intensity = self.scenario.intensity.at(self.time);
        let faults = self
            .scenario
            .faults
            .state_at(self.time, self.rack.groups().len());

        // Battery string failures strike once, at their scheduled instant,
        // and the capacity loss persists for the rest of the run.
        for (at, surviving, fired) in &mut self.battery_faults {
            if !*fired && *at <= self.time {
                self.bank.derate(*surviving);
                *fired = true;
            }
        }

        // An inverter dropout takes the whole PV feed offline; a brownout
        // caps the utility feed. Both are invisible to the controller until
        // the epoch's observations come back — exactly like the plant.
        let actual_solar = if faults.solar_out {
            Watts::ZERO
        } else {
            self.solar.mean_over(self.time, epoch_len) * self.solar_scale
        };
        let grid_budget = self.scenario.grid_budget * faults.grid_factor;
        self.grid.set_budget(grid_budget);
        let view = self.bank.view(epoch_len);

        // Servers still up after injected crashes, per group.
        let online: Vec<u32> = self
            .rack
            .groups()
            .iter()
            .zip(&faults.crashed)
            .map(|(g, &c)| g.count.saturating_sub(c))
            .collect();
        let offline_servers: u32 = self
            .rack
            .groups()
            .iter()
            .zip(&online)
            .map(|(g, &o)| g.count - o)
            .sum();

        // The controller schedules over what the monitor reports as alive.
        let spec = RackSpec::new(
            self.rack_spec
                .groups
                .iter()
                .zip(&online)
                .map(|(g, &o)| {
                    let mut g = *g;
                    g.count = o;
                    g
                })
                .collect(),
        )?;

        // The Manual policy physically tries candidate allocations; other
        // policies are model-driven and get no oracle.
        let rack = &self.rack;
        let oracle_online = online.clone();
        let oracle_fn = move |per_server: &[Watts]| {
            rack.measure_active(per_server, &oracle_online, intensity)
                .total_throughput()
        };
        let oracle: Option<&dyn greenhetero_core::policies::AllocationOracle> =
            if self.scenario.policy == PolicyKind::Manual {
                Some(&oracle_fn)
            } else {
                None
            };

        let decision = self
            .controller
            .begin_epoch(&spec, &view, grid_budget, oracle)?;

        let epoch_id = self.controller.epoch();
        let (record, flows, enforce) = match decision {
            EpochDecision::Train { pairs, plan } => {
                // Training run: ondemand governor with ample power. Every
                // group gets its full workload envelope. A telemetry outage
                // makes the sweep unreadable: the controller will simply
                // ask again next epoch.
                if !faults.telemetry_out {
                    let sample_count = self.controller.config().samples_per_training() as usize;
                    for (config, workload) in &pairs {
                        let group_idx = self
                            .rack
                            .groups()
                            .iter()
                            .position(|g| {
                                g.platform.id() == *config && g.workload.id() == *workload
                            })
                            .ok_or_else(|| CoreError::InvalidConfig {
                                reason: format!("training requested for unknown pair {config}"),
                            })?;
                        let envelope = self.rack.groups()[group_idx].server().truth().envelope();
                        let sweep = self.rack.training_sweep(group_idx, sample_count, intensity);
                        let samples: Vec<ProfileSample> = sweep
                            .iter()
                            .enumerate()
                            .map(|(i, s)| {
                                ProfileSample::new(
                                    self.meter.read(s.power),
                                    self.noisy_perf(s.throughput),
                                    self.time + self.controller.config().sample_period * i as u64,
                                )
                            })
                            .collect();
                        self.controller
                            .complete_training(*config, *workload, envelope, &samples)?;
                    }
                }

                // The rack itself runs unconstrained during training.
                let full: Vec<Watts> = self
                    .rack
                    .groups()
                    .iter()
                    .map(|g| g.server().truth().envelope().peak())
                    .collect();
                let enforce_started = Instant::now();
                let m = self.rack.measure_active(&full, &online, intensity);
                let flows = self.pdu.dispatch(
                    &plan,
                    actual_solar,
                    m.total_power(),
                    &mut self.bank,
                    &mut self.grid,
                    epoch_len,
                );
                let enforce = enforce_started.elapsed();
                let demand = self.rack.demand_at_active(&online, intensity);
                let supplied = plan.budget().min(demand);
                epu.record(m.total_power().min(supplied), supplied);
                if faults.telemetry_out {
                    self.controller.end_epoch_stale();
                } else {
                    self.controller.end_epoch(actual_solar, demand, &[]);
                }
                let unserved = flows.unserved();
                let record = EpochRecord {
                    epoch: epoch_id,
                    time: self.time,
                    training: true,
                    case: plan.case,
                    budget: plan.budget(),
                    demand,
                    solar: actual_solar,
                    load: m.total_power(),
                    battery_discharge: flows.from_battery,
                    battery_charge: flows.charging,
                    grid_load: flows.from_grid,
                    grid_charge: if flows.charge_source
                        == Some(greenhetero_core::sources::ChargeSource::Grid)
                    {
                        flows.charging
                    } else {
                        Watts::ZERO
                    },
                    soc: self.bank.soc(),
                    intensity,
                    throughput: m.total_throughput(),
                    par: None,
                    unserved,
                    shed_servers: 0,
                    offline_servers,
                    degraded: faults.telemetry_out || unserved.value() > 1e-6,
                };
                (record, flows, enforce)
            }
            EpochDecision::Run {
                plan,
                allocation,
                resilience,
            } => {
                // Shed servers come out of the online population.
                let active: Vec<u32> = online
                    .iter()
                    .zip(&resilience.shed)
                    .map(|(&o, &s)| o.saturating_sub(s))
                    .collect();
                let enforce_started = Instant::now();
                let m = self
                    .rack
                    .measure_active(&allocation.per_server, &active, intensity);
                let flows = self.pdu.dispatch(
                    &plan,
                    actual_solar,
                    m.total_power(),
                    &mut self.bank,
                    &mut self.grid,
                    epoch_len,
                );
                let enforce = enforce_started.elapsed();
                // EPU (Eq. 1): of the power genuinely offered for compute
                // (never more than the surviving rack could demand), how
                // much was productively consumed.
                let demand = self.rack.demand_at_active(&online, intensity);
                let supplied = plan.budget().min(demand);
                epu.record(m.total_power().min(supplied), supplied);

                if faults.telemetry_out {
                    // Meters dark: the controller holds its predictors and
                    // models, only the epoch clock advances.
                    self.controller.end_epoch_stale();
                } else {
                    // Monitor feedback: only on-curve observations from
                    // groups with live servers (a stranded, powered-off
                    // server is not a point of Perf = f(Power)).
                    let raw: Vec<_> = self
                        .rack
                        .groups()
                        .iter()
                        .zip(m.groups.iter().zip(&active))
                        .filter(|(g, (gm, a))| {
                            **a > 0 && gm.sample.power >= g.server().truth().envelope().idle()
                        })
                        .map(|(g, (gm, _))| {
                            (
                                g.platform.id(),
                                g.workload.id(),
                                gm.sample.power,
                                gm.sample.throughput,
                            )
                        })
                        .collect();
                    let feedback: Vec<GroupFeedback> = raw
                        .into_iter()
                        .map(|(config, workload, power, perf)| GroupFeedback {
                            config,
                            workload,
                            per_server_power: self.meter.read(power),
                            per_server_perf: self.noisy_perf(perf),
                            at: self.time,
                        })
                        .collect();
                    self.controller.end_epoch(actual_solar, demand, &feedback);
                }

                let unserved = flows.unserved();
                let record = EpochRecord {
                    epoch: epoch_id,
                    time: self.time,
                    training: false,
                    case: plan.case,
                    budget: plan.budget(),
                    demand,
                    solar: actual_solar,
                    load: m.total_power(),
                    battery_discharge: flows.from_battery,
                    battery_charge: flows.charging,
                    grid_load: flows.from_grid,
                    grid_charge: if flows.charge_source
                        == Some(greenhetero_core::sources::ChargeSource::Grid)
                    {
                        flows.charging
                    } else {
                        Watts::ZERO
                    },
                    soc: self.bank.soc(),
                    intensity,
                    throughput: m.total_throughput(),
                    par: allocation.shares.first().copied(),
                    unserved,
                    shed_servers: resilience.shed_total(),
                    offline_servers,
                    degraded: resilience.is_degraded()
                        || faults.telemetry_out
                        || unserved.value() > 1e-6,
                };
                (record, flows, enforce)
            }
        };

        self.enforce_seconds.record_duration(enforce);
        let epoch_wall = epoch_started.elapsed();
        self.epoch_wall_seconds.record_duration(epoch_wall);
        self.flow_gauges.record(&flows, record.soc);
        if self.telemetry.sink_enabled() {
            self.emit_epoch_event(&record, &flows, enforce, epoch_wall);
        }

        self.time += epoch_len;
        Ok(record)
    }

    /// Builds and sends the epoch's event (and the enforcement span).
    /// Only called when the sink is enabled — the disabled path never
    /// allocates.
    fn emit_epoch_event(
        &self,
        record: &EpochRecord,
        flows: &PowerFlows,
        enforce: Duration,
        epoch_wall: Duration,
    ) {
        let trace = self.controller.epoch_trace();
        let sink = self.telemetry.sink();
        sink.record_span(&SpanRecord::new("sim.enforce", record.epoch, enforce));
        sink.record_epoch(&EpochEvent {
            epoch: record.epoch,
            rack_id: self.rack_id,
            time: record.time,
            training: record.training,
            case: record.case,
            degrade: trace.degrade,
            engine: trace.engine,
            predict: trace.predict,
            sources: trace.select_sources,
            solve: trace.solve,
            enforce,
            epoch_wall,
            budget: record.budget,
            demand: record.demand,
            solar: record.solar,
            load: record.load,
            renewable_to_load: flows.from_renewable,
            battery_to_load: flows.from_battery,
            grid_to_load: flows.from_grid,
            charging: flows.charging,
            curtailed: flows.curtailed,
            unserved: record.unserved,
            soc: record.soc,
            intensity: record.intensity,
            throughput: record.throughput,
            shed: record.shed_servers,
            offline: record.offline_servers,
            rejected_feedback: trace.rejected_feedback,
            quarantines: trace.quarantines,
            cache_hits: trace.cache_hits,
            cache_misses: trace.cache_misses,
            cache_evicts: trace.cache_evictions,
            warm_starts: trace.warm_starts,
        });
    }

    /// Applies relative gaussian noise to a throughput counter.
    fn noisy_perf(&mut self, value: Throughput) -> Throughput {
        if self.scenario.perf_noise <= 0.0 {
            return value;
        }
        let n = standard_normal(&mut self.perf_rng) * self.scenario.perf_noise;
        Throughput::new((value.value() * (1.0 + n)).max(0.0))
    }
}

fn standard_normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.random();
        let u2: f64 = rng.random();
        if u1 > f64::EPSILON {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Convenience: build and run a scenario in one call.
///
/// # Errors
///
/// Propagates [`Simulation::new`] and [`Simulation::run`] failures.
pub fn run_scenario(scenario: Scenario) -> Result<RunReport, CoreError> {
    Simulation::new(scenario)?.run()
}

/// Drives a [`Simulation`] one epoch at a time, owning the record and
/// EPU accumulators that [`Simulation::run`] keeps on its stack.
///
/// This is the long-lived-session entry point: a serve daemon steps a
/// `Stepper` on its own cadence, reads each decision as it lands, and
/// can abandon the instance mid-run (e.g. after a panic) — rebuilding
/// from the same scenario and re-stepping to the old cursor reproduces
/// the abandoned state bit-for-bit, because stepping is deterministic.
/// `step-all + finish` remains byte-identical to [`Simulation::run`].
#[derive(Debug)]
pub struct Stepper {
    sim: Simulation,
    records: Vec<EpochRecord>,
    epu: EpuAccumulator,
    epochs_total: u64,
}

impl Stepper {
    /// Builds a stepper from a scenario.
    ///
    /// # Errors
    ///
    /// Propagates [`Simulation::new`] failures.
    pub fn new(scenario: Scenario) -> Result<Self, CoreError> {
        Ok(Stepper::from_simulation(Simulation::new(scenario)?))
    }

    /// Wraps an already-built simulation (e.g. one constructed on a
    /// shared substrate via [`Simulation::with_substrate`]).
    #[must_use]
    pub fn from_simulation(sim: Simulation) -> Self {
        let epochs_total = sim.epochs_total();
        Stepper {
            sim,
            records: Vec::with_capacity(epochs_total as usize),
            epu: EpuAccumulator::new(),
            epochs_total,
        }
    }

    /// Steps one epoch. Returns the freshly produced record, or `None`
    /// once the scenario's horizon has been reached.
    ///
    /// # Errors
    ///
    /// Propagates controller failures (bugs, not run-time conditions).
    pub fn step(&mut self) -> Result<Option<&EpochRecord>, CoreError> {
        if self.cursor() >= self.epochs_total {
            return Ok(None);
        }
        self.sim.step_epoch(&mut self.records, &mut self.epu)?;
        Ok(self.records.last())
    }

    /// Epochs stepped so far.
    #[must_use]
    pub fn cursor(&self) -> u64 {
        self.records.len() as u64
    }

    /// Epochs the scenario spans in total.
    #[must_use]
    pub fn epochs_total(&self) -> u64 {
        self.epochs_total
    }

    /// `true` once every epoch has been stepped.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.cursor() >= self.epochs_total
    }

    /// The records stepped so far, oldest first.
    #[must_use]
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// The underlying simulation's scenario.
    #[must_use]
    pub fn scenario(&self) -> &Scenario {
        self.sim.scenario()
    }

    /// Consumes the stepper into a report over the epochs stepped so
    /// far. After a full run this is byte-identical to
    /// [`Simulation::run`] on the same scenario.
    #[must_use]
    pub fn finish(self) -> RunReport {
        self.sim.finish(self.records, self.epu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenhetero_core::sources::SupplyCase;

    fn quick_scenario(policy: PolicyKind) -> Scenario {
        Scenario {
            servers_per_type: 2,
            days: 1,
            ..Scenario::paper_runtime(policy)
        }
    }

    #[test]
    fn one_day_run_produces_96_epochs() {
        let report = run_scenario(quick_scenario(PolicyKind::GreenHetero)).unwrap();
        assert_eq!(report.epochs.len(), 96);
        // First epoch trains the database.
        assert!(report.epochs[0].training);
        assert!(!report.epochs[1].training);
    }

    #[test]
    // Exact float equality is the contract under test: the stepper must
    // reproduce the batch run bit for bit.
    #[allow(clippy::float_cmp)]
    fn stepper_matches_batch_run_bit_for_bit() {
        let batch = run_scenario(quick_scenario(PolicyKind::GreenHetero)).unwrap();
        let mut stepper = Stepper::new(quick_scenario(PolicyKind::GreenHetero)).unwrap();
        assert_eq!(stepper.epochs_total(), 96);
        let mut stepped = 0u64;
        while let Some(record) = stepper.step().unwrap() {
            assert_eq!(*record, batch.epochs[stepped as usize]);
            stepped += 1;
            assert_eq!(stepper.cursor(), stepped);
        }
        assert!(stepper.is_complete());
        assert_eq!(stepped, 96);
        let report = stepper.finish();
        assert_eq!(report.epochs, batch.epochs);
        assert_eq!(report.grid_energy, batch.grid_energy);
        assert_eq!(report.grid_peak, batch.grid_peak);
        assert_eq!(report.grid_cost, batch.grid_cost);
        assert_eq!(report.unserved_energy, batch.unserved_energy);
        assert_eq!(report.degraded_epochs, batch.degraded_epochs);
    }

    #[test]
    fn stepper_rebuild_and_replay_resumes_mid_run() {
        // The serve daemon's crash-recovery path: abandon a stepper at an
        // arbitrary cursor, rebuild from the spec, replay to the cursor,
        // and continue — the tail must match an undisturbed run exactly.
        let mut undisturbed = Stepper::new(quick_scenario(PolicyKind::GreenHetero)).unwrap();
        while undisturbed.step().unwrap().is_some() {}
        let reference = undisturbed.finish();

        let mut first = Stepper::new(quick_scenario(PolicyKind::GreenHetero)).unwrap();
        for _ in 0..37 {
            first.step().unwrap().unwrap();
        }
        let cursor = first.cursor();
        drop(first); // "panic": the instance is lost

        let mut rebuilt = Stepper::new(quick_scenario(PolicyKind::GreenHetero)).unwrap();
        for _ in 0..cursor {
            rebuilt.step().unwrap().unwrap();
        }
        while rebuilt.step().unwrap().is_some() {}
        assert_eq!(rebuilt.finish().epochs, reference.epochs);
    }

    #[test]
    fn cases_follow_the_sun() {
        let report = run_scenario(quick_scenario(PolicyKind::GreenHetero)).unwrap();
        // Midnight epochs are Case C; midday epochs are Case A or B.
        let by_hour = |h: u64| &report.epochs[(h * 4) as usize];
        assert_eq!(by_hour(1).case, SupplyCase::C);
        assert_ne!(by_hour(12).case, SupplyCase::C);
    }

    #[test]
    fn battery_discharges_at_night_and_charges_by_day() {
        let report = run_scenario(quick_scenario(PolicyKind::GreenHetero)).unwrap();
        let night_discharge: f64 = report.epochs[..20]
            .iter()
            .map(|e| e.battery_discharge.value())
            .sum();
        assert!(night_discharge > 0.0, "battery should carry the night");
        let day_charge: f64 = report
            .epochs
            .iter()
            .filter(|e| e.case == SupplyCase::A)
            .map(|e| e.battery_charge.value())
            .sum();
        assert!(day_charge > 0.0, "surplus solar should charge the battery");
        assert!(report.battery_cycles > 0.0);
    }

    #[test]
    fn greenhetero_beats_uniform_on_the_paper_runtime() {
        let gh = run_scenario(quick_scenario(PolicyKind::GreenHetero)).unwrap();
        let uni = run_scenario(quick_scenario(PolicyKind::Uniform)).unwrap();
        let gain = gh.mean_throughput().value() / uni.mean_throughput().value();
        assert!(gain > 1.05, "expected a clear gain, got {gain:.3}x");
        // And better power utilization.
        assert!(gh.epu().value() >= uni.epu().value());
    }

    #[test]
    fn all_policies_run_to_completion() {
        for policy in PolicyKind::ALL {
            let report = run_scenario(quick_scenario(policy)).unwrap();
            assert_eq!(report.epochs.len(), 96, "{policy}");
            assert!(report.mean_throughput().value() > 0.0, "{policy}");
        }
    }

    #[test]
    fn deterministic_given_a_seed() {
        let a = run_scenario(quick_scenario(PolicyKind::GreenHetero)).unwrap();
        let b = run_scenario(quick_scenario(PolicyKind::GreenHetero)).unwrap();
        assert_eq!(a.epochs.len(), b.epochs.len());
        for (x, y) in a.epochs.iter().zip(&b.epochs) {
            assert_eq!(x.throughput, y.throughput);
            assert_eq!(x.budget, y.budget);
        }
    }

    #[test]
    fn grid_usage_respects_budget() {
        let scenario = quick_scenario(PolicyKind::GreenHetero);
        let budget = scenario.grid_budget;
        let report = run_scenario(scenario).unwrap();
        assert!(report.grid_peak <= budget);
        for e in &report.epochs {
            assert!(e.grid_load + e.grid_charge <= budget + Watts::new(1e-6));
        }
    }

    #[test]
    fn fault_free_runs_report_no_degradation() {
        let report = run_scenario(quick_scenario(PolicyKind::GreenHetero)).unwrap();
        assert_eq!(report.degraded_epochs, 0);
        // Dispatch arithmetic may leave sub-nanowatt-hour float residue.
        assert!(report.unserved_energy.value() < 1e-9);
        assert_eq!(report.recovery_latency_epochs, None);
        for e in &report.epochs {
            assert_eq!(e.shed_servers, 0);
            assert_eq!(e.offline_servers, 0);
            assert!(!e.degraded);
        }
    }
}
