//! Temporary review stress test for the rollover seed/remaining race.
use std::sync::atomic::{AtomicU64, Ordering};

use greenhetero_sim::sched::run_epoch_batches;

#[test]
fn stress_rollover_counter() {
    for round in 0..50 {
        let epochs = 2_000u64;
        let batches: Vec<u64> = (0..8).collect();
        let steps = AtomicU64::new(0);
        let out = run_epoch_batches(
            4,
            epochs,
            batches,
            &|_b, _e| {
                steps.fetch_add(1, Ordering::Relaxed);
                true
            },
            &|_e, _b| {},
            &|_e| {},
        );
        assert_eq!(out.len(), 8);
        assert_eq!(
            steps.load(Ordering::Relaxed),
            epochs * 8,
            "round {round}: step count drifted"
        );
    }
}
