//! Chaos-day integration suite: the full fault taxonomy — solar dropout,
//! battery string failure, server crash/recovery, telemetry outage, grid
//! brownout — injected into end-to-end runs for every allocation policy.
//!
//! The contract under test: faults degrade a run, they never kill it. No
//! `Err`, no panic, bounded EPU loss, and recovery once the last fault
//! clears.

use greenhetero_core::policies::PolicyKind;
use greenhetero_core::types::{Ratio, SimDuration, SimTime, Watts};
use greenhetero_sim::engine::run_scenario;
use greenhetero_sim::faults::{FaultKind, FaultSchedule, FaultWindow};
use greenhetero_sim::scenario::Scenario;

/// The chaos day at integration-test scale (2 servers per type, 1 day).
fn chaos(policy: PolicyKind) -> Scenario {
    Scenario {
        servers_per_type: 2,
        days: 1,
        ..Scenario::chaos_runtime(policy)
    }
}

/// The identical run with no faults injected — the degradation baseline.
fn fault_free(policy: PolicyKind) -> Scenario {
    Scenario {
        faults: FaultSchedule::none(),
        ..chaos(policy)
    }
}

#[test]
fn chaos_day_runs_to_completion_for_every_policy() {
    for policy in PolicyKind::ALL {
        let report = run_scenario(chaos(policy)).unwrap_or_else(|e| panic!("{policy}: {e}"));
        assert_eq!(report.epochs.len(), 96, "{policy}");
        assert!(report.mean_throughput().value() > 0.0, "{policy}");
        // The faults must actually leave a mark on the ledger: the 2-hour
        // telemetry outage alone covers 8 epochs.
        assert!(report.degraded_epochs >= 8, "{policy}: faults left no mark");
        // Crash epochs are visible as offline servers.
        assert!(
            report.epochs.iter().any(|e| e.offline_servers > 0),
            "{policy}: crash window never surfaced"
        );
    }
}

#[test]
fn chaos_degradation_is_bounded_and_recovers() {
    for policy in PolicyKind::ALL {
        let baseline = run_scenario(fault_free(policy)).unwrap();
        let stressed = run_scenario(chaos(policy)).unwrap();
        // Bounded degradation: EPU stays within 30 % of the fault-free run.
        let floor = 0.7 * baseline.epu().value();
        assert!(
            stressed.epu().value() >= floor,
            "{policy}: EPU collapsed under faults ({:.3} < {floor:.3})",
            stressed.epu().value()
        );
        // Recovery: once the last fault clears (20:00), the controller
        // returns to non-degraded operation within a couple of epochs.
        let latency = stressed
            .recovery_latency_epochs
            .unwrap_or_else(|| panic!("{policy}: never recovered after the last fault"));
        assert!(latency <= 8, "{policy}: recovery took {latency} epochs");
    }
}

#[test]
fn chaos_runs_are_deterministic_given_a_seed() {
    for policy in [PolicyKind::GreenHetero, PolicyKind::Manual] {
        let a = run_scenario(chaos(policy)).unwrap();
        let b = run_scenario(chaos(policy)).unwrap();
        // The full record streams match, fault timings included.
        assert_eq!(a.epochs, b.epochs, "{policy}");
        assert_eq!(a.degraded_epochs, b.degraded_epochs, "{policy}");
        assert_eq!(a.unserved_energy, b.unserved_energy, "{policy}");
        assert_eq!(
            a.recovery_latency_epochs, b.recovery_latency_epochs,
            "{policy}"
        );
    }
}

#[test]
fn seeded_schedules_are_reproducible() {
    let a = FaultSchedule::seeded(7, 2, 2);
    let b = FaultSchedule::seeded(7, 2, 2);
    assert_eq!(a, b);
    assert_ne!(a, FaultSchedule::seeded(8, 2, 2));
    // And a seeded schedule drives a deterministic run end to end.
    let scenario = |seed| Scenario {
        faults: FaultSchedule::seeded(seed, 2, 1),
        ..fault_free(PolicyKind::GreenHetero)
    };
    let x = run_scenario(scenario(7)).unwrap();
    let y = run_scenario(scenario(7)).unwrap();
    assert_eq!(x.epochs, y.epochs);
}

#[test]
fn brownout_caps_the_grid_draw() {
    // A 6-hour overnight brownout cuts the utility feed to half budget;
    // every epoch in the window must respect the reduced cap.
    let brownout = FaultWindow {
        start: SimTime::ZERO,
        len: SimDuration::from_hours(6),
        kind: FaultKind::GridBrownout {
            factor: Ratio::HALF,
        },
    };
    let scenario = Scenario {
        faults: FaultSchedule::new(vec![brownout]),
        ..fault_free(PolicyKind::GreenHetero)
    };
    let budget = scenario.grid_budget;
    let report = run_scenario(scenario).unwrap();
    let cut = budget * 0.5;
    for e in report.epochs.iter().take(24) {
        assert!(
            e.grid_load + e.grid_charge <= cut + Watts::new(1e-6),
            "epoch {:?} drew {} over the browned-out cap {cut}",
            e.epoch,
            e.grid_load + e.grid_charge
        );
    }
    // Outside the window the full cap applies and the run stays healthy.
    for e in report.epochs.iter().skip(24) {
        assert!(e.grid_load + e.grid_charge <= budget + Watts::new(1e-6));
    }
    assert!(report.mean_throughput().value() > 0.0);
}

#[test]
fn telemetry_outage_epochs_are_flagged_degraded() {
    let report = run_scenario(chaos(PolicyKind::GreenHetero)).unwrap();
    // The chaos day's telemetry outage spans 18:00–20:00: epochs 72..80.
    for e in &report.epochs[72..80] {
        assert!(
            e.degraded,
            "epoch {:?} in the outage is not degraded",
            e.epoch
        );
    }
}
