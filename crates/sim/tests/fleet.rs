//! Determinism-under-parallelism tests for the fleet engine: a fleet
//! run is a pure function of its [`FleetSpec`], so worker count — 1,
//! the machine's parallelism, or anything between — must never leak
//! into the numbers. The lock-step engine is also held to the plain
//! sequential reference, byte for byte.

use std::io::Write;
use std::sync::{Arc, Mutex, PoisonError};

use greenhetero_core::policies::PolicyKind;
use greenhetero_core::solver::DEFAULT_SHARED_SOLVE_CAPACITY;
use greenhetero_core::telemetry::{names, JsonlSink};
use greenhetero_core::types::Watts;
use greenhetero_sim::fleet::{FleetReport, FleetSpec};
use greenhetero_sim::scenario::{Scenario, TelemetrySpec};

/// An in-memory `Write` target shareable between the sink and the test.
#[derive(Debug, Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn bytes(&self) -> Vec<u8> {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn tiny_fleet(racks: u32) -> FleetSpec {
    FleetSpec::new(
        Scenario {
            servers_per_type: 2,
            days: 1,
            ..Scenario::paper_runtime(PolicyKind::GreenHetero)
        },
        racks,
    )
}

fn chaos_fleet(racks: u32) -> FleetSpec {
    let mut spec = FleetSpec::new(
        Scenario {
            servers_per_type: 2,
            days: 1,
            ..Scenario::chaos_runtime(PolicyKind::GreenHetero)
        },
        racks,
    );
    spec.solar_scale_spread = 0.15;
    spec.pretrain = false;
    spec
}

fn csv_bytes(report: &FleetReport) -> Vec<u8> {
    let mut buf = Vec::new();
    report
        .write_csv(&mut buf)
        .unwrap_or_else(|e| panic!("in-memory CSV write: {e}"));
    buf
}

/// Asserts two fleet reports carry bit-identical results (the `workers`
/// provenance field is allowed — required, even — to differ).
fn assert_identical(a: &FleetReport, b: &FleetReport, label: &str) {
    assert_eq!(a.epochs, b.epochs, "{label}: fleet epoch streams diverged");
    assert_eq!(
        a.rack_summaries, b.rack_summaries,
        "{label}: rack summaries diverged"
    );
    // Counters and gauges are pure functions of the run; histogram
    // *values* for `_seconds` instruments are wall-clock and thus
    // legitimately differ, but their observation counts may not.
    assert_eq!(
        a.ledger.counters, b.ledger.counters,
        "{label}: merged counter totals diverged"
    );
    assert_eq!(
        a.ledger.gauges, b.ledger.gauges,
        "{label}: merged gauges diverged"
    );
    let counts = |r: &FleetReport| {
        r.ledger
            .histograms
            .iter()
            .map(|h| (h.name.clone(), h.count))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        counts(a),
        counts(b),
        "{label}: histogram observation counts diverged"
    );
    assert_eq!(
        a.mean_epu.value().to_bits(),
        b.mean_epu.value().to_bits(),
        "{label}: mean EPU diverged"
    );
    assert_eq!(
        csv_bytes(a),
        csv_bytes(b),
        "{label}: CSV exports are not byte-identical"
    );
}

#[test]
fn one_worker_and_full_parallelism_are_bit_identical() {
    let mut solo = tiny_fleet(9);
    solo.workers = 1;
    let mut wide = tiny_fleet(9);
    wide.workers = std::thread::available_parallelism().map_or(4, usize::from);

    let a = solo.run().expect("single-worker fleet");
    let b = wide.run().expect("parallel fleet");
    assert_eq!(a.workers, 1);
    assert_identical(&a, &b, "paper fleet 1 vs N workers");
}

#[test]
fn every_worker_count_matches_the_sequential_reference() {
    let reference = tiny_fleet(7).run_sequential().expect("sequential fleet");
    for workers in [1, 2, 3, 5, 8, 16] {
        let mut spec = tiny_fleet(7);
        spec.workers = workers;
        let report = spec.run().expect("lock-step fleet");
        assert_identical(
            &reference,
            &report,
            &format!("sequential vs {workers} workers"),
        );
    }
}

#[test]
fn chaos_fleet_with_spread_and_training_stays_deterministic() {
    let mut solo = chaos_fleet(6);
    solo.workers = 1;
    let mut wide = chaos_fleet(6);
    wide.workers = 4;

    let a = solo.run().expect("single-worker chaos fleet");
    let b = wide.run().expect("parallel chaos fleet");
    assert_identical(&a, &b, "chaos fleet 1 vs 4 workers");
    assert_identical(
        &a,
        &chaos_fleet(6).run_sequential().expect("sequential chaos"),
        "chaos fleet lock-step vs sequential",
    );
}

#[test]
fn merged_ledger_totals_match_across_worker_counts() {
    let mut solo = tiny_fleet(5);
    solo.workers = 1;
    let mut wide = tiny_fleet(5);
    wide.workers = 4;

    let a = solo.run().expect("single-worker fleet");
    let b = wide.run().expect("parallel fleet");

    let epochs = |r: &FleetReport| {
        r.ledger
            .histogram(names::EPOCH_WALL_SECONDS)
            .map(|h| h.count)
            .expect("epoch wall histogram")
    };
    assert_eq!(epochs(&a), 5 * 96, "five racks, one day each");
    assert_eq!(epochs(&a), epochs(&b));
    assert_eq!(
        a.ledger.counter(names::TRAINING_RUNS),
        b.ledger.counter(names::TRAINING_RUNS),
    );
    assert_eq!(
        a.ledger.histogram(names::SOLVE_SECONDS).map(|h| h.count),
        b.ledger.histogram(names::SOLVE_SECONDS).map(|h| h.count),
    );
}

#[test]
fn rerun_exports_are_byte_identical() {
    // The report artifacts — CSV rows and the merged ledger — are pure
    // functions of the spec: two cold runs must export the same bytes.
    // (GH007 exists to keep it that way: one unordered-map iteration in
    // a reduction path and this assertion starts flapping.)
    let a = chaos_fleet(5).run().expect("first chaos fleet run");
    let b = chaos_fleet(5).run().expect("second chaos fleet run");
    assert_identical(&a, &b, "chaos fleet rerun");
    assert_eq!(
        csv_bytes(&a),
        csv_bytes(&b),
        "fleet CSV export is not byte-identical across reruns"
    );

    // The ordered shared sink buffers per-rack lines and flushes them
    // in (epoch, rack) order, so the JSONL event log reproduces byte
    // for byte at ANY worker count — except the `*_us` wall-clock
    // block, the same carve-out `assert_identical` grants `_seconds`
    // histograms. Everything semantic (epochs, cases, flows, SoC,
    // counters) sits outside that block.
    let jsonl_run = |workers: usize| {
        let buf = SharedBuf::default();
        let mut spec = tiny_fleet(3);
        spec.workers = workers;
        spec.base.telemetry = TelemetrySpec::Sink(Arc::new(JsonlSink::from_writer(buf.clone())));
        spec.run().expect("fleet with JSONL sink");
        String::from_utf8(buf.bytes()).expect("JSONL is UTF-8")
    };
    let reference = strip_wall_clock(&jsonl_run(1));
    assert!(!reference.is_empty(), "JSONL sink captured no events");
    for workers in [1, 2, 4, 16] {
        assert_eq!(
            reference,
            strip_wall_clock(&jsonl_run(workers)),
            "fleet JSONL export is not byte-identical at {workers} workers"
        );
    }
}

/// Drops the contiguous `"predict_us"…"epoch_us"` wall-clock field block
/// from each JSONL line, leaving every deterministic field in place.
fn strip_wall_clock(jsonl: &str) -> String {
    jsonl
        .lines()
        .map(|line| {
            let start = line.find(",\"predict_us\":");
            let end = line.find(",\"budget_w\":");
            match (start, end) {
                (Some(s), Some(e)) if s < e => format!("{}{}", &line[..s], &line[e..]),
                _ => panic!("JSONL line missing the fixed wall-clock block: {line}"),
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn shared_cache_on_off_or_resized_is_invisible_in_the_artifacts() {
    // The fleet-wide solve cache is purely an acceleration: every
    // report, CSV row, and ledger entry must be bit-identical whether
    // the cache is at its default size, disabled outright, or squeezed
    // so hard it thrashes — at every worker count, on the nastiest
    // variant we have (chaos faults + solar spread + per-rack
    // training).
    let reference = {
        let mut spec = chaos_fleet(6);
        spec.shared_solve_capacity = 0;
        spec.run_sequential()
            .expect("uncached sequential reference")
    };
    for capacity in [DEFAULT_SHARED_SOLVE_CAPACITY, 0, 3] {
        for workers in [1, 2, 16] {
            let mut spec = chaos_fleet(6);
            spec.shared_solve_capacity = capacity;
            spec.workers = workers;
            let report = spec.run().expect("lock-step chaos fleet");
            assert_identical(
                &reference,
                &report,
                &format!("shared cache capacity {capacity} at {workers} workers"),
            );
        }
    }
}

#[test]
fn homogeneous_fleet_pays_one_cold_solve_per_problem() {
    // With noise zeroed, no solar spread, and the shared pretrained
    // profile, all 16 racks pose bit-identical allocation problems
    // every epoch: the fleet pays ~one cold solve per distinct problem
    // and the other 15 racks reuse it from the shared cache.
    let mut spec = tiny_fleet(16);
    spec.base.meter_noise = Watts::new(0.0);
    spec.base.perf_noise = 0.0;
    let report = spec.run().expect("homogeneous fleet");
    let stats = report.shared_solve;
    let epochs = report.epochs.len() as u64;
    assert!(epochs > 0, "fleet produced no epochs");
    assert!(stats.hits > 0, "identical racks never hit the shared cache");
    let cold = stats.misses + stats.revalidation_misses;
    assert!(
        cold <= 2 * epochs,
        "expected ~one cold solve per epoch, got {cold} over {epochs} epochs"
    );
    assert!(
        stats.reuse_rate() >= 0.9,
        "homogeneous 16-rack fleet should reuse >=90% of solves, got {:.3} ({stats:?})",
        stats.reuse_rate()
    );
}

#[test]
fn fleet_racks_differ_from_each_other_but_not_across_runs() {
    let report = tiny_fleet(4).run().expect("fleet");
    // Different seeds ⇒ rack trajectories should not be carbon copies.
    let throughputs: std::collections::HashSet<u64> = report
        .rack_summaries
        .iter()
        .map(|r| r.mean_throughput.value().to_bits())
        .collect();
    assert!(
        throughputs.len() > 1,
        "racks should diverge under distinct seeds"
    );
    // But the whole fleet is reproducible run over run.
    let again = tiny_fleet(4).run().expect("fleet rerun");
    assert_identical(&report, &again, "fleet rerun");
}
