//! End-to-end telemetry tests: JSONL export schema, determinism under
//! telemetry, and ledger/replay agreement.

use std::io::Write;
use std::sync::{Arc, Mutex, PoisonError};

use greenhetero_core::policies::PolicyKind;
use greenhetero_core::telemetry::{names, replay_totals, CollectingSink, EventLine, JsonlSink};
use greenhetero_sim::engine::run_scenario;
use greenhetero_sim::scenario::{Scenario, TelemetrySpec};

/// An in-memory `Write` target shareable between the sink and the test.
#[derive(Debug, Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        let bytes = self.0.lock().unwrap_or_else(PoisonError::into_inner);
        String::from_utf8_lossy(&bytes).into_owned()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn tiny(policy: PolicyKind) -> Scenario {
    Scenario {
        servers_per_type: 1,
        days: 1,
        ..Scenario::paper_runtime(policy)
    }
}

#[test]
fn jsonl_run_emits_one_line_per_epoch() {
    let buf = SharedBuf::default();
    let mut scenario = tiny(PolicyKind::GreenHetero);
    scenario.telemetry = TelemetrySpec::Sink(Arc::new(JsonlSink::from_writer(buf.clone())));
    let report = run_scenario(scenario).expect("simulation runs");

    let output = buf.contents();
    let lines: Vec<&str> = output.lines().collect();
    assert_eq!(
        lines.len(),
        report.epochs.len(),
        "one JSON line per simulated epoch"
    );

    const REQUIRED: &[&str] = &[
        "epoch",
        "rack_id",
        "time_s",
        "training",
        "case",
        "degrade",
        "engine",
        "predict_us",
        "sources_us",
        "solve_us",
        "enforce_us",
        "epoch_us",
        "budget_w",
        "demand_w",
        "solar_w",
        "load_w",
        "renewable_w",
        "battery_w",
        "grid_w",
        "charge_w",
        "curtailed_w",
        "unserved_w",
        "soc",
        "intensity",
        "throughput",
        "shed",
        "offline",
        "rejected_feedback",
        "quarantines",
        "cache_hits",
        "cache_misses",
        "cache_evicts",
        "warm_starts",
    ];
    for (i, line) in lines.iter().enumerate() {
        let event = EventLine::parse(line)
            .unwrap_or_else(|| panic!("line {i} is not a flat JSON object: {line}"));
        for key in REQUIRED {
            assert!(
                event.get(key).is_some(),
                "line {i} is missing key {key}: {line}"
            );
        }
    }

    // Epoch ids count up from zero; the last line's flows mirror the
    // final epoch record.
    let first = EventLine::parse(lines[0]).expect("parses");
    assert_eq!(first.num("epoch"), Some(0.0));
    assert_eq!(first.flag("training"), Some(true));
    let last = EventLine::parse(lines[lines.len() - 1]).expect("parses");
    let last_record = report.epochs.last().expect("non-empty run");
    assert_eq!(last.num("soc"), Some(last_record.soc.value()));
    assert_eq!(last.num("throughput"), Some(last_record.throughput.value()));
}

#[test]
fn telemetry_does_not_perturb_the_simulation() {
    let off = run_scenario(tiny(PolicyKind::GreenHetero)).expect("telemetry-off run");

    let mut with_sink = tiny(PolicyKind::GreenHetero);
    with_sink.telemetry = TelemetrySpec::Sink(Arc::new(CollectingSink::new()));
    let on = run_scenario(with_sink).expect("telemetry-on run");

    assert_eq!(
        off.epochs, on.epochs,
        "equal seeds must produce identical epoch streams with telemetry on or off"
    );
    assert_eq!(off.grid_cost.to_bits(), on.grid_cost.to_bits());
    assert_eq!(off.battery_cycles.to_bits(), on.battery_cycles.to_bits());
}

#[test]
fn jsonl_replay_matches_ledger_counters() {
    let buf = SharedBuf::default();
    let mut scenario = tiny(PolicyKind::GreenHetero);
    scenario.telemetry = TelemetrySpec::Sink(Arc::new(JsonlSink::from_writer(buf.clone())));
    let report = run_scenario(scenario).expect("simulation runs");

    let output = buf.contents();
    let totals = replay_totals(output.lines());
    let counter = |name: &str| report.ledger.counter(name).unwrap_or(0);

    assert_eq!(totals.events as usize, report.epochs.len());
    assert_eq!(totals.training_epochs, counter(names::TRAINING_RUNS));
    assert_eq!(totals.rejected_feedback, counter(names::FEEDBACK_REJECTED));
    assert_eq!(totals.quarantines, counter(names::PROFILE_QUARANTINED));
    assert_eq!(totals.engine_exact, counter(names::SOLVER_EXACT_WINS));
    assert_eq!(totals.engine_grid, counter(names::SOLVER_GRID_WINS));
    assert_eq!(
        totals.degrade_to_nominal,
        counter(names::DEGRADE_TO_NOMINAL)
    );
    assert_eq!(
        totals.degrade_to_fallback,
        counter(names::DEGRADE_TO_FALLBACK)
    );
    assert_eq!(
        totals.degrade_to_load_shed,
        counter(names::DEGRADE_TO_LOAD_SHED)
    );
    assert_eq!(
        totals.degrade_to_safe_idle,
        counter(names::DEGRADE_TO_SAFE_IDLE)
    );
    assert_eq!(totals.cache_hits, counter(names::SOLVER_CACHE_HIT));
    assert_eq!(totals.cache_misses, counter(names::SOLVER_CACHE_MISS));
    assert_eq!(totals.cache_evicts, counter(names::SOLVER_CACHE_EVICT));
    assert_eq!(totals.warm_starts, counter(names::SOLVER_WARM_START));
    // A solver policy resolves at least one epoch through an engine, and
    // every solve goes through the fast path (GreenHetero's per-epoch
    // refits keep it cold, so engagement shows up as cache misses).
    assert!(totals.engine_exact + totals.engine_grid > 0);
    assert!(totals.warm_starts + totals.cache_hits + totals.cache_misses > 0);
}

#[test]
fn collecting_sink_sees_controller_and_engine_spans() {
    let sink = Arc::new(CollectingSink::new());
    let mut scenario = tiny(PolicyKind::GreenHetero);
    scenario.telemetry = TelemetrySpec::Sink(sink.clone());
    let report = run_scenario(scenario).expect("simulation runs");

    let epochs = sink.epochs();
    assert_eq!(epochs.len(), report.epochs.len());

    let spans = sink.spans();
    let span_names: std::collections::BTreeSet<&str> = spans.iter().map(|s| s.name).collect();
    for expected in [
        "controller.predict",
        "controller.select_sources",
        "controller.solve",
        "sim.enforce",
    ] {
        assert!(
            span_names.contains(expected),
            "missing span {expected}; saw {span_names:?}"
        );
    }
}

#[test]
fn replay_accepts_logs_written_before_rack_id_existed() {
    // A line captured from a run predating the fleet engine: 32 keys,
    // no `rack_id`. The parser is schema-agnostic and the replayer sums
    // by name, so old archives must keep replaying unchanged.
    let vintage = r#"{"epoch":3,"time_s":2700,"training":false,"case":"B","degrade":"nominal","engine":"exact","predict_us":12,"sources_us":3,"solve_us":140,"enforce_us":9,"epoch_us":170,"budget_w":812.50,"demand_w":900.00,"solar_w":640.00,"load_w":810.10,"renewable_w":640.00,"battery_w":170.10,"grid_w":0.00,"charge_w":0.00,"curtailed_w":0.00,"unserved_w":0.00,"soc":0.7100,"intensity":0.90,"throughput":410.25,"shed":0,"offline":0,"rejected_feedback":1,"quarantines":0,"cache_hits":2,"cache_misses":1,"cache_evicts":0,"warm_starts":3}"#;
    let event = EventLine::parse(vintage).expect("pre-fleet line still parses");
    assert_eq!(event.fields().len(), 32);
    assert_eq!(event.get("rack_id"), None, "fixture must predate rack_id");
    assert_eq!(event.num("epoch"), Some(3.0));
    assert_eq!(event.text("case"), Some("B"));

    let training = r#"{"epoch":0,"time_s":0,"training":true,"case":"A","degrade":"nominal","engine":"none","predict_us":0,"sources_us":0,"solve_us":0,"enforce_us":4,"epoch_us":11,"budget_w":900.00,"demand_w":900.00,"solar_w":700.00,"load_w":450.00,"renewable_w":450.00,"battery_w":0.00,"grid_w":0.00,"charge_w":250.00,"curtailed_w":0.00,"unserved_w":0.00,"soc":0.5200,"intensity":0.90,"throughput":228.00,"shed":0,"offline":0,"rejected_feedback":0,"quarantines":0,"cache_hits":0,"cache_misses":0,"cache_evicts":0,"warm_starts":0}"#;
    let totals = greenhetero_core::telemetry::replay_totals([training, vintage]);
    assert_eq!(totals.events, 2);
    assert_eq!(totals.training_epochs, 1);
    assert_eq!(totals.rejected_feedback, 1);
    assert_eq!(totals.engine_exact, 1);
    assert_eq!(totals.cache_hits, 2);
    assert_eq!(totals.warm_starts, 3);
}

#[test]
fn current_jsonl_lines_carry_rack_id() {
    let buf = SharedBuf::default();
    let mut scenario = tiny(PolicyKind::GreenHetero);
    scenario.telemetry = TelemetrySpec::Sink(Arc::new(JsonlSink::from_writer(buf.clone())));
    run_scenario(scenario).expect("simulation runs");

    let output = buf.contents();
    for line in output.lines() {
        let event = EventLine::parse(line).expect("parses");
        assert_eq!(
            event.num("rack_id"),
            Some(0.0),
            "single-rack runs stamp rack 0"
        );
    }
}
