//! Golden-fixture byte-identity: the fleet engine's CSV and JSONL
//! exports are held to the exact bytes the pre-scheduler contiguous
//! shard path produced (fixtures under `tests/fixtures/`, regenerated
//! only deliberately via `cargo run --example gen_golden`). This pins
//! execution-model changes — like the work-stealing epoch scheduler —
//! to history, not just to their own reruns, at every worker count.

use std::sync::{Arc, Mutex, PoisonError};

use greenhetero_core::policies::PolicyKind;
use greenhetero_core::telemetry::JsonlSink;
use greenhetero_sim::fleet::FleetSpec;
use greenhetero_sim::scenario::{Scenario, TelemetrySpec};

/// An in-memory `Write` target shareable between the sink and the test.
#[derive(Debug, Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn bytes(&self) -> Vec<u8> {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn paper_fleet(racks: u32) -> FleetSpec {
    FleetSpec::new(
        Scenario {
            servers_per_type: 2,
            days: 1,
            ..Scenario::paper_runtime(PolicyKind::GreenHetero)
        },
        racks,
    )
}

fn chaos_fleet(racks: u32) -> FleetSpec {
    let mut spec = FleetSpec::new(
        Scenario {
            servers_per_type: 2,
            days: 1,
            ..Scenario::chaos_runtime(PolicyKind::GreenHetero)
        },
        racks,
    );
    spec.solar_scale_spread = 0.15;
    spec.pretrain = false;
    spec
}

fn csv_bytes(spec: FleetSpec) -> Vec<u8> {
    let report = spec.run().unwrap_or_else(|e| panic!("fleet run: {e}"));
    let mut buf = Vec::new();
    report
        .write_csv(&mut buf)
        .unwrap_or_else(|e| panic!("in-memory CSV write: {e}"));
    buf
}

/// Drops the contiguous `"predict_us"…"epoch_us"` wall-clock field block
/// from each JSONL line, leaving every deterministic field in place.
fn strip_wall_clock(jsonl: &str) -> String {
    jsonl
        .lines()
        .map(|line| {
            let start = line.find(",\"predict_us\":");
            let end = line.find(",\"budget_w\":");
            match (start, end) {
                (Some(s), Some(e)) if s < e => format!("{}{}", &line[..s], &line[e..]),
                _ => panic!("JSONL line missing the fixed wall-clock block: {line}"),
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 16];

#[test]
fn paper_fleet_csv_matches_the_golden_fixture_at_every_worker_count() {
    let golden = include_bytes!("fixtures/golden_fleet_paper.csv").to_vec();
    for workers in WORKER_SWEEP {
        let mut spec = paper_fleet(3);
        spec.workers = workers;
        assert_eq!(
            csv_bytes(spec),
            golden,
            "paper fleet CSV diverged from the golden shard-path fixture at {workers} workers"
        );
    }
}

#[test]
fn chaos_fleet_csv_matches_the_golden_fixture_at_every_worker_count() {
    let golden = include_bytes!("fixtures/golden_fleet_chaos.csv").to_vec();
    for workers in WORKER_SWEEP {
        let mut spec = chaos_fleet(5);
        spec.workers = workers;
        assert_eq!(
            csv_bytes(spec),
            golden,
            "chaos fleet CSV diverged from the golden shard-path fixture at {workers} workers"
        );
    }
}

#[test]
fn sequential_oracle_matches_the_golden_fixtures() {
    let golden_paper = include_bytes!("fixtures/golden_fleet_paper.csv").to_vec();
    let report = paper_fleet(3).run_sequential().expect("sequential fleet");
    let mut buf = Vec::new();
    report.write_csv(&mut buf).expect("in-memory CSV write");
    assert_eq!(
        buf, golden_paper,
        "sequential oracle CSV diverged from the golden fixture"
    );

    let golden_chaos = include_bytes!("fixtures/golden_fleet_chaos.csv").to_vec();
    let report = chaos_fleet(5).run_sequential().expect("sequential chaos");
    let mut buf = Vec::new();
    report.write_csv(&mut buf).expect("in-memory CSV write");
    assert_eq!(
        buf, golden_chaos,
        "sequential chaos oracle CSV diverged from the golden fixture"
    );
}

#[test]
fn paper_fleet_jsonl_matches_the_golden_fixture_at_every_worker_count() {
    let golden = include_str!("fixtures/golden_fleet_paper.jsonl");
    let golden = golden.strip_suffix('\n').unwrap_or(golden);
    for workers in WORKER_SWEEP {
        let buf = SharedBuf::default();
        let mut spec = paper_fleet(3);
        spec.workers = workers;
        spec.base.telemetry = TelemetrySpec::Sink(Arc::new(JsonlSink::from_writer(buf.clone())));
        spec.run().expect("fleet with JSONL sink");
        let jsonl = strip_wall_clock(&String::from_utf8(buf.bytes()).expect("JSONL is UTF-8"));
        assert_eq!(
            jsonl, golden,
            "fleet JSONL diverged from the golden shard-path fixture at {workers} workers"
        );
    }
}
