//! End-to-end purity tests for the solver fast path: the allocation
//! cache and the sampled cross-check are pure accelerators, so seeded
//! runs must be bit-identical with them on, off, or resized.
//!
//! Warm-starting itself may pick a different (exact-first) engine than a
//! cold max-of-engines solve, so it is covered by quality-tolerance
//! property tests in the core crate rather than bit-identity here; the
//! cache and cross-check have no such latitude.

use greenhetero_core::policies::PolicyKind;
use greenhetero_core::telemetry::names;
use greenhetero_core::types::Watts;
use greenhetero_sim::engine::run_scenario;
use greenhetero_sim::scenario::Scenario;

fn tiny(policy: PolicyKind) -> Scenario {
    Scenario {
        servers_per_type: 2,
        days: 1,
        ..Scenario::paper_runtime(policy)
    }
}

fn chaos(policy: PolicyKind) -> Scenario {
    Scenario {
        servers_per_type: 2,
        days: 1,
        ..Scenario::chaos_runtime(policy)
    }
}

/// Asserts that two scenario variants produce bit-identical runs.
fn assert_identical(base: Scenario, variant: Scenario, label: &str) {
    let a = run_scenario(base).unwrap_or_else(|e| panic!("{label} base: {e}"));
    let b = run_scenario(variant).unwrap_or_else(|e| panic!("{label} variant: {e}"));
    assert_eq!(a.epochs, b.epochs, "{label}: epoch streams diverged");
    assert_eq!(
        a.grid_cost.to_bits(),
        b.grid_cost.to_bits(),
        "{label}: grid cost diverged"
    );
    assert_eq!(
        a.battery_cycles.to_bits(),
        b.battery_cycles.to_bits(),
        "{label}: battery cycles diverged"
    );
}

#[test]
fn cache_on_and_off_are_bit_identical() {
    for policy in [PolicyKind::GreenHetero, PolicyKind::GreenHeteroA] {
        let base = tiny(policy);
        let mut no_cache = tiny(policy);
        no_cache.controller.solver_cache_capacity = 0;
        assert_identical(base, no_cache, "paper cache-off");

        let mut tiny_cache = tiny(policy);
        tiny_cache.controller.solver_cache_capacity = 2;
        assert_identical(tiny(policy), tiny_cache, "paper cache-resized");
    }
}

#[test]
fn cache_on_and_off_are_bit_identical_under_chaos() {
    let base = chaos(PolicyKind::GreenHetero);
    let mut no_cache = chaos(PolicyKind::GreenHetero);
    no_cache.controller.solver_cache_capacity = 0;
    assert_identical(base, no_cache, "chaos cache-off");
}

#[test]
fn cross_check_sampling_is_observe_only() {
    let base = tiny(PolicyKind::GreenHetero);
    let mut no_cross_check = tiny(PolicyKind::GreenHetero);
    no_cross_check.controller.solver_cross_check_period = 0;
    assert_identical(base, no_cross_check, "cross-check-off");

    let mut aggressive = tiny(PolicyKind::GreenHetero);
    aggressive.controller.solver_cross_check_period = 1;
    assert_identical(
        tiny(PolicyKind::GreenHetero),
        aggressive,
        "cross-check-every-solve",
    );
}

#[test]
fn quantum_changes_only_the_hit_rate_never_the_answers() {
    let base = tiny(PolicyKind::GreenHetero);
    let mut coarse = tiny(PolicyKind::GreenHetero);
    coarse.controller.solver_cache_budget_quantum = Watts::new(50.0);
    assert_identical(base, coarse, "coarse-quantum");
}

#[test]
fn fast_path_counters_reach_the_run_ledger() {
    // Static models (the A variant) keep fingerprints stable, so the
    // diurnal day's small epoch-to-epoch budget moves warm-start most
    // solves; the few cold solves each consult the cache.
    let report = run_scenario(tiny(PolicyKind::GreenHeteroA)).expect("simulation runs");
    let counter = |name: &str| report.ledger.counter(name).unwrap_or(0);
    assert!(
        counter(names::SOLVER_WARM_START) > 0,
        "warm path never engaged"
    );
    assert!(
        counter(names::SOLVER_CACHE_HIT) + counter(names::SOLVER_CACHE_MISS) > 0,
        "cache never consulted"
    );

    // The online-refit variant invalidates the warm gate every epoch by
    // design — model fingerprints change, so every solve must go cold.
    let refit = run_scenario(tiny(PolicyKind::GreenHetero)).expect("simulation runs");
    let refit_counter = |name: &str| refit.ledger.counter(name).unwrap_or(0);
    assert_eq!(
        refit_counter(names::SOLVER_WARM_START),
        0,
        "stale models must not be warm-started"
    );
    assert!(
        refit_counter(names::SOLVER_CACHE_MISS) > 0,
        "cold solves must consult the cache"
    );
}
