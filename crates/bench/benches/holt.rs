//! Micro-benchmarks of Holt prediction: the per-epoch observe/predict
//! cost and the periodic (α, β) grid-search training.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greenhetero_core::predictor::{train_holt, HoltPredictor, Predictor};
use greenhetero_core::types::Watts;
use greenhetero_power::solar::{synthesize, SolarConfig};
use std::hint::black_box;

fn bench_holt(c: &mut Criterion) {
    let trace = synthesize(&SolarConfig::high(Watts::new(1800.0), 3)).unwrap();
    let series: Vec<f64> = trace.values().iter().map(|w| w.value()).collect();

    c.bench_function("holt/observe_predict", |b| {
        let mut p = HoltPredictor::new(0.8, 0.2).unwrap();
        let mut i = 0usize;
        b.iter(|| {
            p.observe(black_box(series[i % series.len()]));
            i += 1;
            p.predict().unwrap()
        })
    });

    let mut group = c.benchmark_group("holt/train");
    for history in [96usize, 192, 672] {
        let slice = &series[..history.min(series.len())];
        group.bench_with_input(BenchmarkId::from_parameter(history), &slice, |b, s| {
            b.iter(|| train_holt(black_box(s), 0.05).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_holt);
criterion_main!(benches);
