//! Micro-benchmarks of the allocation solver: the per-epoch cost of the
//! exact engine, the grid engine, and the combined `solve` for 2-, 3- and
//! 5-type racks (the paper bounds racks at 3 types; 5 stresses headroom).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greenhetero_core::database::{PerfModel, Quadratic};
use greenhetero_core::solver::{solve, solve_exact, solve_grid, AllocationProblem, ServerGroup};
use greenhetero_core::types::{ConfigId, PowerRange, Watts};
use std::hint::black_box;

fn problem(types: u32) -> AllocationProblem {
    let groups: Vec<ServerGroup> = (0..types)
        .map(|i| {
            let idle = 40.0 + f64::from(i) * 12.0;
            let peak = 90.0 + f64::from(i) * 22.0;
            ServerGroup::new(
                ConfigId::new(i),
                5,
                PerfModel::new(
                    Quadratic {
                        l: -500.0 - f64::from(i) * 100.0,
                        m: 30.0 + f64::from(i) * 5.0,
                        n: -0.06 - f64::from(i) * 0.01,
                    },
                    PowerRange::new(Watts::new(idle), Watts::new(peak)).unwrap(),
                ),
            )
            .unwrap()
        })
        .collect();
    let budget: f64 = groups.iter().map(|g| g.group_peak().value()).sum::<f64>() * 0.7;
    AllocationProblem::new(groups, Watts::new(budget)).unwrap()
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver");
    for types in [2u32, 3, 5] {
        let p = problem(types);
        group.bench_with_input(BenchmarkId::new("exact", types), &p, |b, p| {
            b.iter(|| solve_exact(black_box(p)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("grid", types), &p, |b, p| {
            b.iter(|| solve_grid(black_box(p)))
        });
        group.bench_with_input(BenchmarkId::new("combined", types), &p, |b, p| {
            b.iter(|| solve(black_box(p)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
