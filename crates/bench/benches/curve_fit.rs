//! Micro-benchmark of the quadratic least-squares curve fit the database
//! performs on every training run and every online refit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greenhetero_core::database::fit_quadratic;
use std::hint::black_box;

fn samples(n: usize) -> Vec<(f64, f64)> {
    (0..n)
        .map(|i| {
            let x = 60.0 + 90.0 * (i as f64 / (n - 1).max(1) as f64);
            let noise = if i % 2 == 0 { 3.0 } else { -3.0 };
            (x, -400.0 + 20.0 * x - 0.04 * x * x + noise)
        })
        .collect()
}

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("curve_fit");
    // 5 = one training run; 128 = a full retained-history refit.
    for n in [5usize, 32, 128] {
        let pts = samples(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| fit_quadratic(black_box(pts)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fit);
criterion_main!(benches);
