//! End-to-end benchmark: simulating one full day (96 epochs) of the
//! paper's runtime experiment, per policy.

use criterion::{criterion_group, criterion_main, Criterion};
use greenhetero_core::policies::PolicyKind;
use greenhetero_sim::engine::run_scenario;
use greenhetero_sim::scenario::Scenario;
use std::hint::black_box;

fn bench_day(c: &mut Criterion) {
    let mut group = c.benchmark_group("day_simulation");
    group.sample_size(10);
    for policy in [
        PolicyKind::Uniform,
        PolicyKind::GreenHeteroP,
        PolicyKind::GreenHetero,
    ] {
        group.bench_function(policy.name(), |b| {
            b.iter(|| {
                let report = run_scenario(black_box(Scenario::paper_runtime(policy))).unwrap();
                report.mean_throughput()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_day);
criterion_main!(benches);
