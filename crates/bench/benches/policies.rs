//! Micro-benchmark of the five allocation policies' decision cost on the
//! same problem (Table III ablation: what does each decision procedure
//! cost per epoch?).

use criterion::{criterion_group, criterion_main, Criterion};
use greenhetero_core::database::{PerfModel, Quadratic};
use greenhetero_core::policies::PolicyKind;
use greenhetero_core::solver::{AllocationProblem, ServerGroup};
use greenhetero_core::types::{ConfigId, PowerRange, Throughput, Watts};
use std::hint::black_box;

fn problem() -> AllocationProblem {
    let a = ServerGroup::new(
        ConfigId::new(0),
        5,
        PerfModel::new(
            Quadratic {
                l: -3000.0,
                m: 60.0,
                n: -0.12,
            },
            PowerRange::new(Watts::new(88.0), Watts::new(147.0)).unwrap(),
        ),
    )
    .unwrap();
    let b = ServerGroup::new(
        ConfigId::new(1),
        5,
        PerfModel::new(
            Quadratic {
                l: -1200.0,
                m: 55.0,
                n: -0.18,
            },
            PowerRange::new(Watts::new(47.0), Watts::new(81.0)).unwrap(),
        ),
    )
    .unwrap();
    AllocationProblem::new(vec![a, b], Watts::new(900.0)).unwrap()
}

fn bench_policies(c: &mut Criterion) {
    let p = problem();
    // A cheap stand-in oracle for Manual (the simulation's real oracle
    // measures a rack; here we only benchmark the policy's own loop).
    let oracle =
        |per_server: &[Watts]| Throughput::new(per_server.iter().map(|w| w.value().sqrt()).sum());

    let mut group = c.benchmark_group("policies");
    for kind in PolicyKind::ALL {
        let policy = kind.build();
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                policy
                    .allocate(black_box(&p), Some(&oracle))
                    .unwrap()
                    .projected
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
