//! Micro-benchmark of one full controller epoch: prediction, source
//! selection, database lookup and the solver — what runs every 15 minutes
//! on the paper's rack controller.

use criterion::{criterion_group, criterion_main, Criterion};
use greenhetero_core::config::ControllerConfig;
use greenhetero_core::controller::{Controller, EpochDecision};
use greenhetero_core::database::ProfileSample;
use greenhetero_core::policies::PolicyKind;
use greenhetero_core::sources::BatteryView;
use greenhetero_core::types::{Ratio, SimTime, Watts};
use greenhetero_server::rack::{Combination, Rack};
use greenhetero_server::workload::WorkloadKind;
use std::hint::black_box;

fn trained_controller(rack: &Rack, policy: PolicyKind) -> Controller {
    let mut c = Controller::new(ControllerConfig::default(), policy).unwrap();
    for (gi, g) in rack.groups().iter().enumerate() {
        let sweep = rack.training_sweep(gi, 5, Ratio::ONE);
        let samples: Vec<ProfileSample> = sweep
            .iter()
            .enumerate()
            .map(|(i, s)| {
                ProfileSample::new(s.power, s.throughput, SimTime::from_secs(i as u64 * 120))
            })
            .collect();
        c.complete_training(
            g.platform.id(),
            g.workload.id(),
            g.server().truth().envelope(),
            &samples,
        )
        .unwrap();
    }
    for _ in 0..4 {
        c.end_epoch(Watts::new(700.0), Watts::new(1100.0), &[]);
    }
    c
}

fn bench_epoch(c: &mut Criterion) {
    let rack = Rack::combination(Combination::Comb1, 5, WorkloadKind::SpecJbb).unwrap();
    let spec = rack.controller_spec().unwrap();
    let battery = BatteryView {
        max_discharge: Watts::new(1500.0),
        max_charge: Watts::new(2400.0),
        needs_recharge: false,
    };

    let mut group = c.benchmark_group("epoch_step");
    for policy in [PolicyKind::Uniform, PolicyKind::GreenHetero] {
        let mut controller = trained_controller(&rack, policy);
        group.bench_function(policy.name(), |b| {
            b.iter(|| {
                let d = controller
                    .begin_epoch(black_box(&spec), &battery, Watts::new(1000.0), None)
                    .unwrap();
                match &d {
                    EpochDecision::Run { allocation, .. } => allocation.projected,
                    EpochDecision::Train { .. } => unreachable!("already trained"),
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_epoch);
criterion_main!(benches);
