//! Shared plumbing for the GreenHetero reproduction harnesses.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! and prints the corresponding rows/series; this library holds the
//! formatting helpers and the experiment presets they share.

use greenhetero_core::policies::PolicyKind;
use greenhetero_server::workload::WorkloadKind;
use greenhetero_sim::report::RunReport;
use greenhetero_sim::runner::compare_policies;
use greenhetero_sim::scenario::Scenario;

/// Runs the Figs. 9/10 workload study: every Fig. 9 workload under every
/// policy, with the scarce-renewable setting. Returns, per workload, the
/// five policy reports in [`policy_order`].
///
/// # Panics
///
/// Panics if a simulation fails (indicates a bug, not a runtime state).
#[must_use]
pub fn run_workload_study() -> Vec<(WorkloadKind, Vec<(PolicyKind, RunReport)>)> {
    WorkloadKind::FIG9_SET
        .iter()
        .map(|&workload| {
            let base = Scenario::workload_study(workload, PolicyKind::Uniform);
            let outcomes = compare_policies(&base, &policy_order())
                .unwrap_or_else(|e| panic!("workload study failed for {workload}: {e}"));
            (
                workload,
                outcomes.into_iter().map(|o| (o.policy, o.report)).collect(),
            )
        })
        .collect()
}

/// Prints a figure/table banner.
pub fn banner(id: &str, caption: &str) {
    println!("================================================================");
    println!("{id}: {caption}");
    println!("================================================================");
}

/// Prints a markdown-style table header and separator row.
pub fn table_header(columns: &[&str]) {
    println!("| {} |", columns.join(" | "));
    println!(
        "|{}|",
        columns
            .iter()
            .map(|c| "-".repeat(c.len() + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
}

/// Formats one markdown table row.
pub fn table_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// The five policies in the paper's presentation order, with Uniform first
/// (it is the normalization baseline).
#[must_use]
pub fn policy_order() -> [PolicyKind; 5] {
    [
        PolicyKind::Uniform,
        PolicyKind::Manual,
        PolicyKind::GreenHeteroP,
        PolicyKind::GreenHeteroA,
        PolicyKind::GreenHetero,
    ]
}

/// Renders a compact horizontal bar for terminal "plots".
#[must_use]
pub fn bar(value: f64, scale: f64, width: usize) -> String {
    let filled = ((value / scale) * width as f64).round().max(0.0) as usize;
    "█".repeat(filled.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "█████");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(20.0, 10.0, 10).chars().count(), 10);
    }

    #[test]
    fn policy_order_starts_with_uniform() {
        assert_eq!(policy_order()[0], PolicyKind::Uniform);
        assert_eq!(policy_order().len(), 5);
    }
}
