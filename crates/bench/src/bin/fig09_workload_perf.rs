//! Figure 9 — performance of the five power-allocation policies across
//! the datacenter workloads, normalized to the Uniform baseline, when the
//! renewable supply is insufficient (Low solar trace, saturating load).
//!
//! Paper shape: GreenHetero best everywhere (mean ≈ 1.6×), Streamcluster
//! the biggest winner (≈ 2.2×), Memcached the smallest (≈ 1.2×), Mcf
//! ≈ 1.3×, and GreenHetero ≥ GreenHetero-a ≥ {GreenHetero-p, Manual}
//! ≥ Uniform.

use greenhetero_bench::{banner, policy_order, run_workload_study, table_header, table_row};
use greenhetero_core::metrics::geometric_mean;
use greenhetero_core::policies::PolicyKind;

fn main() {
    banner(
        "Figure 9",
        "Normalized performance of five power allocation policies for different workloads",
    );

    let study = run_workload_study();
    let policies = policy_order();

    let mut header: Vec<&str> = vec!["Workload"];
    let names: Vec<&str> = policies.iter().map(|p| p.name()).collect();
    header.extend(&names);
    table_header(&header);

    let mut per_policy_gains: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    for (workload, outcomes) in &study {
        let baseline = outcomes
            .iter()
            .find(|(p, _)| *p == PolicyKind::Uniform)
            .expect("uniform always runs")
            .1
            .mean_scarce_throughput();
        assert!(
            baseline.value() > 0.0,
            "Uniform baseline produced zero scarce throughput for {workload}; cannot normalize"
        );
        let mut cells = vec![workload.to_string()];
        for (i, (_, report)) in outcomes.iter().enumerate() {
            let speedup = report.mean_scarce_throughput().value() / baseline.value();
            per_policy_gains[i].push(speedup);
            cells.push(format!("{speedup:.2}x"));
        }
        table_row(&cells);
    }

    let mut mean_cells = vec!["**geo-mean**".to_string()];
    for gains in &per_policy_gains {
        mean_cells.push(format!("{:.2}x", geometric_mean(gains).unwrap_or(1.0)));
    }
    table_row(&mean_cells);

    let gh = &per_policy_gains[policies.len() - 1];
    let best = gh.iter().cloned().fold(f64::MIN, f64::max);
    let worst = gh.iter().cloned().fold(f64::MAX, f64::min);
    println!();
    println!(
        "GreenHetero vs Uniform: geo-mean {:.2}x, best {:.2}x, worst {:.2}x",
        geometric_mean(gh).unwrap_or(1.0),
        best,
        worst
    );
    println!("paper reports: average ≈1.6x, best 2.2x (Streamcluster), worst 1.2x (Memcached), Mcf ≈1.3x");
}
