//! Table II — the server platform catalog.

use greenhetero_bench::{banner, table_header, table_row};
use greenhetero_server::platform::PlatformKind;

fn main() {
    banner("Table II", "Server description");
    table_header(&[
        "Server type",
        "Frequency",
        "Socket",
        "Cores",
        "Peak Power",
        "Idle Power",
    ]);
    for p in PlatformKind::ALL {
        let s = p.spec();
        table_row(&[
            s.name.to_string(),
            format!("{}", s.frequency),
            format!("{}", s.sockets),
            format!("{}", s.cores),
            format!("{:.0}W", s.peak.value()),
            format!("{:.0}W", s.idle.value()),
        ]);
    }
}
