//! Figure 10 — effective power utilization (EPU) of the five policies for
//! different workloads, normalized to the Uniform baseline.
//!
//! Paper shape: GreenHetero's EPU averages ≈ 2.2× Uniform's; Canneal shows
//! the largest improvement (≈ 2.7×) and Web-search the smallest (≈ 1.1×);
//! several policies often tie on EPU.

use greenhetero_bench::{banner, policy_order, run_workload_study, table_header, table_row};
use greenhetero_core::metrics::geometric_mean;
use greenhetero_core::metrics::EpuAccumulator;
use greenhetero_core::policies::PolicyKind;
use greenhetero_sim::report::RunReport;

/// EPU over scarce epochs only (matching the paper's insufficient-supply
/// focus): productive watts vs budget watts, epoch by epoch.
fn scarce_epu(report: &RunReport) -> f64 {
    let mut acc = EpuAccumulator::new();
    for e in report.epochs.iter().filter(|e| !e.training) {
        if RunReport::is_scarce(e) {
            acc.record(e.load.min(e.budget), e.budget);
        }
    }
    if acc.is_empty() {
        report.epu().value()
    } else {
        acc.epu().value()
    }
}

fn main() {
    banner(
        "Figure 10",
        "Effective power utilization of five power allocation policies (normalized to Uniform)",
    );

    let study = run_workload_study();
    let policies = policy_order();

    let mut header: Vec<&str> = vec!["Workload"];
    let names: Vec<&str> = policies.iter().map(|p| p.name()).collect();
    header.extend(&names);
    header.push("GreenHetero EPU (abs)");
    table_header(&header);

    let mut gh_gains = Vec::new();
    for (workload, outcomes) in &study {
        let baseline = scarce_epu(
            &outcomes
                .iter()
                .find(|(p, _)| *p == PolicyKind::Uniform)
                .expect("uniform always runs")
                .1,
        );
        assert!(
            baseline > 0.0,
            "Uniform baseline produced zero scarce EPU for {workload}; cannot normalize"
        );
        let mut cells = vec![workload.to_string()];
        let mut gh_abs = 0.0;
        for (p, report) in outcomes {
            let epu = scarce_epu(report);
            cells.push(format!("{:.2}x", epu / baseline));
            if *p == PolicyKind::GreenHetero {
                gh_gains.push(epu / baseline);
                gh_abs = epu;
            }
        }
        cells.push(format!("{gh_abs:.3}"));
        table_row(&cells);
    }

    println!();
    println!(
        "GreenHetero EPU vs Uniform: geo-mean {:.2}x, best {:.2}x, worst {:.2}x",
        geometric_mean(&gh_gains).unwrap_or(1.0),
        gh_gains.iter().cloned().fold(f64::MIN, f64::max),
        gh_gains.iter().cloned().fold(f64::MAX, f64::min),
    );
    println!("paper reports: average ≈2.2x, best 2.7x (Canneal), worst 1.1x (Web-search)");
}
