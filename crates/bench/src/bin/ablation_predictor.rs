//! Ablation — prediction method: Holt double exponential smoothing (the
//! paper's choice) vs the last-value (persistence) and moving-average
//! baselines, on synthetic High/Low solar traces and the rack demand
//! pattern.
//!
//! The paper notes "any other proven prediction approaches can be
//! integrated"; this quantifies what Holt buys on the series the scheduler
//! actually predicts.

use greenhetero_bench::{banner, table_header, table_row};
use greenhetero_core::predictor::train_holt;
use greenhetero_core::predictor::{
    sum_squared_error, HoltPredictor, LastValue, MovingAverage, Predictor, SeasonalNaive,
};
use greenhetero_core::types::{SimDuration, Watts};
use greenhetero_power::solar::{synthesize, SolarConfig};
use greenhetero_power::trace::demand_pattern;

fn rmse<P: Predictor>(p: P, series: &[f64]) -> f64 {
    let n = series.len().saturating_sub(1).max(1);
    (sum_squared_error(p, series) / n as f64).sqrt()
}

fn main() {
    banner(
        "Ablation: predictor",
        "One-step-ahead RMSE (watts) of Holt vs baselines on power series",
    );

    let high = synthesize(&SolarConfig::high(Watts::new(1800.0), 7)).expect("valid");
    let low = synthesize(&SolarConfig::low(Watts::new(1800.0), 7)).expect("valid");
    let demand = demand_pattern(
        Watts::new(650.0),
        Watts::new(1150.0),
        SimDuration::from_minutes(15),
        7,
    );

    let series: Vec<(&str, Vec<f64>)> = vec![
        (
            "High solar",
            high.values().iter().map(|w| w.value()).collect(),
        ),
        (
            "Low solar",
            low.values().iter().map(|w| w.value()).collect(),
        ),
        (
            "Rack demand",
            demand.values().iter().map(|w| w.value()).collect(),
        ),
    ];

    table_header(&[
        "Series",
        "Holt (trained)",
        "Holt (default 0.8/0.2)",
        "Last value",
        "Moving avg (4)",
        "Seasonal (24 h)",
    ]);
    for (name, values) in &series {
        // Train on the first half, score on the second.
        let split = values.len() / 2;
        let trained = train_holt(&values[..split], 0.05).expect("trainable");
        table_row(&[
            (*name).to_string(),
            format!("{:.1}", rmse(trained.params.predictor(), &values[split..])),
            format!(
                "{:.1}",
                rmse(
                    HoltPredictor::new(0.8, 0.2).expect("valid"),
                    &values[split..]
                )
            ),
            format!("{:.1}", rmse(LastValue::new(), &values[split..])),
            format!(
                "{:.1}",
                rmse(MovingAverage::new(4).expect("valid"), &values[split..])
            ),
            format!(
                "{:.1}",
                rmse(SeasonalNaive::new(96).expect("valid"), &values[split..])
            ),
        ]);
    }

    println!();
    println!("takeaway: trend-aware Holt beats the moving average on ramping solar series;");
    println!("training (α, β) on history (Eq. 5) further reduces error on the smoother series");
}
