//! Figure 8 — 24-hour runtime results of SPECjbb under the *High* solar
//! trace: (a) normalized performance of GreenHetero vs Uniform plus the
//! PAR trajectory; (b) battery discharging/charging and grid activity.
//!
//! Paper shape: ≈ 1.5× mean gain while renewable power is insufficient
//! (Cases B/C), ≈ 1× when abundant; mean PAR ≈ 58 %; the battery carries
//! Case C for ≈ 4.2 h before the grid takes over and recharges it.

use std::path::PathBuf;

use greenhetero_bench::{banner, table_header, table_row};
use greenhetero_core::policies::PolicyKind;
use greenhetero_core::sources::SupplyCase;
use greenhetero_sim::engine::run_scenario;
use greenhetero_sim::report::RunReport;
use greenhetero_sim::scenario::{Scenario, TelemetrySpec};

/// Parses `--telemetry <out.jsonl>` from the command line; without the
/// flag the run exports nothing.
fn telemetry_from_args() -> TelemetrySpec {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--telemetry" {
            let path = args.next().expect("--telemetry requires a file path");
            return TelemetrySpec::Jsonl(PathBuf::from(path));
        }
    }
    TelemetrySpec::Off
}

fn main() {
    banner(
        "Figure 8",
        "Runtime results of SPECjbb using the High solar trace (24 h, Comb1 x5, 1000 W grid)",
    );

    let mut gh_scenario = Scenario::paper_runtime(PolicyKind::GreenHetero);
    gh_scenario.telemetry = telemetry_from_args();
    if let TelemetrySpec::Jsonl(path) = &gh_scenario.telemetry {
        println!("streaming per-epoch telemetry to {}", path.display());
    }
    let gh = run_scenario(gh_scenario).expect("simulation runs");
    let uni = run_scenario(Scenario::paper_runtime(PolicyKind::Uniform)).expect("simulation runs");

    println!("\n(a) hourly performance (normalized to Uniform) and PAR");
    table_header(&[
        "Hour",
        "Case",
        "GreenHetero/Uniform",
        "PAR",
        "Budget (W)",
        "Solar (W)",
    ]);
    for hour in 0..24 {
        let idx = |h: u64| (h * 4) as usize..((h + 1) * 4) as usize;
        let mean_thr = |r: &RunReport, h: u64| {
            let slice = &r.epochs[idx(h)];
            slice.iter().map(|e| e.throughput.value()).sum::<f64>() / slice.len() as f64
        };
        let g = mean_thr(&gh, hour);
        let u = mean_thr(&uni, hour);
        let slice = &gh.epochs[idx(hour)];
        let par = slice
            .iter()
            .filter_map(|e| e.par)
            .map(|p| p.value())
            .sum::<f64>()
            / slice.iter().filter(|e| e.par.is_some()).count().max(1) as f64;
        let case = slice[0].case;
        table_row(&[
            format!("{hour:02}"),
            format!("{case:?}").chars().last().unwrap().to_string(),
            format!("{:.2}x", if u > 0.0 { g / u } else { 1.0 }),
            format!("{:.0}%", par * 100.0),
            format!(
                "{:.0}",
                slice.iter().map(|e| e.budget.value()).sum::<f64>() / 4.0
            ),
            format!(
                "{:.0}",
                slice.iter().map(|e| e.solar.value()).sum::<f64>() / 4.0
            ),
        ]);
    }

    println!("\n(b) battery and grid activity (hourly watt averages)");
    table_header(&[
        "Hour",
        "Discharge",
        "Charge",
        "Grid load",
        "Grid charging",
        "SoC",
    ]);
    for hour in 0..24 {
        let slice = &gh.epochs[(hour * 4) as usize..((hour + 1) * 4) as usize];
        let avg = |f: &dyn Fn(&greenhetero_sim::report::EpochRecord) -> f64| {
            slice.iter().map(f).sum::<f64>() / slice.len() as f64
        };
        table_row(&[
            format!("{hour:02}"),
            format!("{:.0} W", avg(&|e| e.battery_discharge.value())),
            format!("{:.0} W", avg(&|e| e.battery_charge.value())),
            format!("{:.0} W", avg(&|e| e.grid_load.value())),
            format!("{:.0} W", avg(&|e| e.grid_charge.value())),
            format!("{:.0}%", slice.last().unwrap().soc.value() * 100.0),
        ]);
    }

    // Summary lines matching the paper's headline numbers.
    // Insufficient supply = Cases B and C (the paper's reading of Fig. 8);
    // abundant = Case A.
    let scarce_gain = gh
        .mean_throughput_where(|e| e.case != SupplyCase::A)
        .value()
        / uni
            .mean_throughput_where(|e| e.case != SupplyCase::A)
            .value()
            .max(1e-9);
    let gh_abundant = gh.mean_throughput_where(|e| e.case == SupplyCase::A);
    let uni_abundant = uni.mean_throughput_where(|e| e.case == SupplyCase::A);
    let abundant_gain = if uni_abundant.value() > 0.0 {
        gh_abundant.value() / uni_abundant.value()
    } else {
        1.0
    };
    // Longest contiguous Case C stretch the battery carried alone.
    let mut ride_through_h = 0.0f64;
    let mut streak = 0.0f64;
    for e in &gh.epochs {
        if e.case == SupplyCase::C && e.battery_discharge.value() > 0.0 {
            streak += 0.25;
            ride_through_h = ride_through_h.max(streak);
        } else {
            streak = 0.0;
        }
    }
    println!();
    println!("mean gain while supply is insufficient: {scarce_gain:.2}x (paper: ≈1.5x)");
    println!("mean gain while supply is abundant:     {abundant_gain:.2}x (paper: ≈1.0x)");
    println!(
        "mean PAR: {:.0}% (paper: ≈58%)",
        gh.mean_par().map_or(0.0, |p| p.value() * 100.0)
    );
    println!("Case C battery ride-through: {ride_through_h:.1} h (paper: ≈4.2 h)");
    println!("battery cycles used: {:.2}", gh.battery_cycles);
}
