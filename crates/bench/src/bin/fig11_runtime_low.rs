//! Figure 11 — 24-hour runtime results of SPECjbb under the **Low** solar
//! trace: more fluctuation, more frequent battery discharge/charge
//! activity, and more grid usage than Fig. 8.
//!
//! Paper shape: ≈ 1.2× mean gain over Uniform during Cases A and B; the
//! batteries cycle to max DoD about twice per day; more grid energy is
//! consumed than under the High trace.

use greenhetero_bench::{banner, table_header, table_row};
use greenhetero_core::policies::PolicyKind;
use greenhetero_core::sources::SupplyCase;
use greenhetero_power::solar::SolarProfile;
use greenhetero_sim::engine::run_scenario;
use greenhetero_sim::scenario::Scenario;

fn low(policy: PolicyKind) -> Scenario {
    Scenario {
        solar_profile: SolarProfile::Low,
        ..Scenario::paper_runtime(policy)
    }
}

fn main() {
    banner(
        "Figure 11",
        "Runtime results of SPECjbb using the Low solar trace (24 h, Comb1 x5, 1000 W grid)",
    );

    let gh = run_scenario(low(PolicyKind::GreenHetero)).expect("simulation runs");
    let uni = run_scenario(low(PolicyKind::Uniform)).expect("simulation runs");
    let gh_high =
        run_scenario(Scenario::paper_runtime(PolicyKind::GreenHetero)).expect("simulation runs");

    println!("\n(a) hourly performance (normalized to Uniform) and supply case");
    table_header(&[
        "Hour",
        "Case",
        "GreenHetero/Uniform",
        "Solar (W)",
        "Budget (W)",
    ]);
    for hour in 0..24u64 {
        let slice = &gh.epochs[(hour * 4) as usize..((hour + 1) * 4) as usize];
        let uslice = &uni.epochs[(hour * 4) as usize..((hour + 1) * 4) as usize];
        let g: f64 = slice.iter().map(|e| e.throughput.value()).sum();
        let u: f64 = uslice.iter().map(|e| e.throughput.value()).sum();
        table_row(&[
            format!("{hour:02}"),
            format!("{:?}", slice[0].case)
                .chars()
                .last()
                .unwrap()
                .to_string(),
            format!("{:.2}x", if u > 0.0 { g / u } else { 1.0 }),
            format!(
                "{:.0}",
                slice.iter().map(|e| e.solar.value()).sum::<f64>() / 4.0
            ),
            format!(
                "{:.0}",
                slice.iter().map(|e| e.budget.value()).sum::<f64>() / 4.0
            ),
        ]);
    }

    println!("\n(b) power profile comparison vs the High trace");
    table_header(&["Metric", "Low trace", "High trace"]);
    let charge_events = |r: &greenhetero_sim::report::RunReport| {
        r.epochs
            .iter()
            .filter(|e| e.battery_charge.value() > 0.0)
            .count()
    };
    let discharge_events = |r: &greenhetero_sim::report::RunReport| {
        r.epochs
            .iter()
            .filter(|e| e.battery_discharge.value() > 0.0)
            .count()
    };
    table_row(&[
        "battery cycles/day".to_string(),
        format!("{:.2}", gh.battery_cycles),
        format!("{:.2}", gh_high.battery_cycles),
    ]);
    table_row(&[
        "charging epochs".to_string(),
        format!("{}", charge_events(&gh)),
        format!("{}", charge_events(&gh_high)),
    ]);
    table_row(&[
        "discharging epochs".to_string(),
        format!("{}", discharge_events(&gh)),
        format!("{}", discharge_events(&gh_high)),
    ]);
    table_row(&[
        "grid energy (kWh)".to_string(),
        format!("{:.1}", gh.grid_energy.as_kilowatt_hours()),
        format!("{:.1}", gh_high.grid_energy.as_kilowatt_hours()),
    ]);
    table_row(&[
        "grid cost ($)".to_string(),
        format!("{:.2}", gh.grid_cost),
        format!("{:.2}", gh_high.grid_cost),
    ]);

    let ab_gain = gh
        .mean_throughput_where(|e| e.case != SupplyCase::C)
        .value()
        / uni
            .mean_throughput_where(|e| e.case != SupplyCase::C)
            .value()
            .max(1e-9);
    println!();
    println!("mean gain during Cases A and B: {ab_gain:.2}x (paper: ≈1.2x)");
    println!(
        "battery cycled {:.1}x to max DoD (paper: about twice per day)",
        gh.battery_cycles
    );
    println!(
        "paper: the Low trace shows more frequent charge/discharge and more grid usage than High"
    );
}
