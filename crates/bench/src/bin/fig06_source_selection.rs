//! Figure 6 — an illustration of power-source selection: a typical
//! datacenter rack power pattern against a 24-hour solar trace, segmented
//! into the scheduler's Cases A, B and C.

use greenhetero_bench::{banner, bar, table_header, table_row};
use greenhetero_core::sources::{select_sources, BatteryView, SourceInputs};
use greenhetero_core::types::{SimDuration, SimTime, Watts};
use greenhetero_power::solar::{synthesize, SolarConfig};
use greenhetero_power::trace::demand_pattern;

fn main() {
    banner(
        "Figure 6",
        "Power source selection over a 24-hour rack demand pattern and solar trace",
    );

    let solar = synthesize(&SolarConfig::high(Watts::new(1800.0), 42)).expect("valid config");
    let demand = demand_pattern(
        Watts::new(650.0),
        Watts::new(1150.0),
        SimDuration::from_minutes(15),
        1,
    );

    // An always-capable battery: this figure illustrates the *case*
    // segmentation, not battery dynamics.
    let battery = BatteryView {
        max_discharge: Watts::new(4000.0),
        max_charge: Watts::new(2400.0),
        needs_recharge: false,
    };

    table_header(&["Hour", "Demand (W)", "Solar (W)", "Case", "demand", "solar"]);
    for hour in 0..24u64 {
        let t = SimTime::from_hours(hour);
        let d = demand.at(t);
        let s = solar.at(t);
        let plan = select_sources(&SourceInputs {
            predicted_renewable: s,
            predicted_demand: d,
            battery,
            grid_budget: Watts::new(1000.0),
            renewable_negligible: Watts::new(5.0),
        });
        table_row(&[
            format!("{hour:02}"),
            format!("{:.0}", d.value()),
            format!("{:.0}", s.value()),
            format!("{:?}", plan.case)
                .chars()
                .last()
                .unwrap()
                .to_string(),
            bar(d.value(), 1800.0, 18),
            bar(s.value(), 1800.0, 18),
        ]);
    }
    println!();
    println!("Case A: renewable ≥ demand (surplus charges the battery)");
    println!("Case B: 0 < renewable < demand (battery supplements, grid last resort)");
    println!("Case C: renewable unavailable (battery alone, then grid)");
}
