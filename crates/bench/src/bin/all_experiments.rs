//! Reproduction summary — runs the headline measurement of every table
//! and figure and prints paper-reported vs measured values side by side.
//! This is the generator behind `EXPERIMENTS.md`.
//!
//! Expect a few minutes of runtime in release mode (it simulates ~90
//! scenario-days).

use greenhetero_bench::{banner, policy_order, run_workload_study, table_header, table_row};
use greenhetero_core::metrics::{geometric_mean, EpuAccumulator};
use greenhetero_core::policies::PolicyKind;
use greenhetero_core::sources::SupplyCase;
use greenhetero_core::types::{Ratio, Watts};
use greenhetero_power::solar::SolarProfile;
use greenhetero_server::rack::{Combination, Rack};
use greenhetero_server::workload::WorkloadKind;
use greenhetero_sim::engine::run_scenario;
use greenhetero_sim::report::RunReport;
use greenhetero_sim::runner::compare_policies;
use greenhetero_sim::scenario::Scenario;

struct Row {
    id: &'static str,
    what: String,
    paper: String,
    measured: String,
}

fn scarce_epu(report: &RunReport) -> f64 {
    let mut acc = EpuAccumulator::new();
    for e in report.epochs.iter().filter(|e| !e.training) {
        if RunReport::is_scarce(e) {
            acc.record(e.load.min(e.budget), e.budget);
        }
    }
    if acc.is_empty() {
        report.epu().value()
    } else {
        acc.epu().value()
    }
}

fn main() {
    banner(
        "GreenHetero reproduction",
        "paper-reported vs measured, every table and figure",
    );
    let mut rows: Vec<Row> = Vec::new();

    // ---- Figure 3: case study -------------------------------------------
    {
        let rack = Rack::combination(Combination::Comb1, 1, WorkloadKind::SpecJbb).unwrap();
        let budget = Watts::new(220.0);
        let eval = |par: f64| {
            let a = budget * Ratio::from_percent(par);
            let m = rack.measure(&[a, budget - a], Ratio::ONE);
            (
                m.total_power().min(budget).value() / budget.value(),
                m.total_throughput().value(),
            )
        };
        let uniform = eval(50.0);
        let mut best = (0.0f64, 0.0f64);
        for s in 0..=100 {
            let par = f64::from(s);
            let (_, perf) = eval(par);
            if perf > best.1 {
                best = (par, perf);
            }
        }
        rows.push(Row {
            id: "Fig 3",
            what: "optimal PAR".into(),
            paper: "65%".into(),
            measured: format!("{:.0}%", best.0),
        });
        rows.push(Row {
            id: "Fig 3",
            what: "gain at optimum vs uniform".into(),
            paper: "≈1.5x".into(),
            measured: format!("{:.2}x", best.1 / uniform.1),
        });
        rows.push(Row {
            id: "Fig 3",
            what: "uniform EPU".into(),
            paper: "≈0.86".into(),
            measured: format!("{:.2}", uniform.0),
        });
        rows.push(Row {
            id: "Fig 3",
            what: "EPU at optimum".into(),
            paper: "→1.0".into(),
            measured: format!("{:.2}", eval(best.0).0),
        });
    }

    // ---- Figure 8: High-trace runtime -----------------------------------
    {
        let gh = run_scenario(Scenario::paper_runtime(PolicyKind::GreenHetero)).unwrap();
        let uni = run_scenario(Scenario::paper_runtime(PolicyKind::Uniform)).unwrap();
        let scarce = gh
            .mean_throughput_where(|e| e.case != SupplyCase::A)
            .value()
            / uni
                .mean_throughput_where(|e| e.case != SupplyCase::A)
                .value();
        let abundant = gh
            .mean_throughput_where(|e| e.case == SupplyCase::A)
            .value()
            / uni
                .mean_throughput_where(|e| e.case == SupplyCase::A)
                .value()
                .max(1e-9);
        let mut ride = 0.0f64;
        let mut streak = 0.0f64;
        for e in &gh.epochs {
            if e.case == SupplyCase::C && e.battery_discharge.value() > 0.0 {
                streak += 0.25;
                ride = ride.max(streak);
            } else {
                streak = 0.0;
            }
        }
        rows.push(Row {
            id: "Fig 8",
            what: "gain while renewable insufficient".into(),
            paper: "≈1.5x".into(),
            measured: format!("{scarce:.2}x"),
        });
        rows.push(Row {
            id: "Fig 8",
            what: "gain while renewable abundant".into(),
            paper: "≈1.0x".into(),
            measured: format!("{abundant:.2}x"),
        });
        rows.push(Row {
            id: "Fig 8",
            what: "mean PAR".into(),
            paper: "≈58%".into(),
            measured: format!("{:.0}%", gh.mean_par().map_or(0.0, |p| p.as_percent())),
        });
        rows.push(Row {
            id: "Fig 8",
            what: "Case C battery ride-through".into(),
            paper: "≈4.2 h".into(),
            measured: format!("{ride:.1} h"),
        });
    }

    // ---- Figures 9 & 10: workload study ---------------------------------
    {
        let study = run_workload_study();
        let mut perf_gains = Vec::new();
        let mut epu_gains = Vec::new();
        let mut best_perf = ("", 0.0f64);
        let mut worst_perf = ("", f64::MAX);
        for (w, outcomes) in &study {
            let uni = &outcomes
                .iter()
                .find(|(p, _)| *p == PolicyKind::Uniform)
                .unwrap()
                .1;
            let gh = &outcomes
                .iter()
                .find(|(p, _)| *p == PolicyKind::GreenHetero)
                .unwrap()
                .1;
            let g = gh.mean_scarce_throughput().value() / uni.mean_scarce_throughput().value();
            let e = scarce_epu(gh) / scarce_epu(uni);
            perf_gains.push(g);
            epu_gains.push(e);
            if g > best_perf.1 {
                best_perf = (w.name(), g);
            }
            if g < worst_perf.1 {
                worst_perf = (w.name(), g);
            }
        }
        rows.push(Row {
            id: "Fig 9",
            what: "mean perf gain over workloads".into(),
            paper: "≈1.6x".into(),
            measured: format!("{:.2}x", geometric_mean(&perf_gains).unwrap_or(1.0)),
        });
        rows.push(Row {
            id: "Fig 9",
            what: "best workload".into(),
            paper: "Streamcluster 2.2x".into(),
            measured: format!("{} {:.2}x", best_perf.0, best_perf.1),
        });
        rows.push(Row {
            id: "Fig 9",
            what: "worst workload".into(),
            paper: "Memcached 1.2x".into(),
            measured: format!("{} {:.2}x", worst_perf.0, worst_perf.1),
        });
        rows.push(Row {
            id: "Fig 10",
            what: "mean EPU gain".into(),
            paper: "≈2.2x".into(),
            measured: format!("{:.2}x", geometric_mean(&epu_gains).unwrap_or(1.0)),
        });
        rows.push(Row {
            id: "Fig 10",
            what: "best EPU gain".into(),
            paper: "Canneal 2.7x".into(),
            measured: format!("{:.2}x", epu_gains.iter().cloned().fold(f64::MIN, f64::max)),
        });
    }

    // ---- Figure 11: Low-trace runtime ------------------------------------
    {
        let low = |p| Scenario {
            solar_profile: SolarProfile::Low,
            ..Scenario::paper_runtime(p)
        };
        let gh = run_scenario(low(PolicyKind::GreenHetero)).unwrap();
        let uni = run_scenario(low(PolicyKind::Uniform)).unwrap();
        let ab = gh
            .mean_throughput_where(|e| e.case != SupplyCase::C)
            .value()
            / uni
                .mean_throughput_where(|e| e.case != SupplyCase::C)
                .value();
        rows.push(Row {
            id: "Fig 11",
            what: "gain during Cases A+B (Low trace)".into(),
            paper: "≈1.2x".into(),
            measured: format!("{ab:.2}x"),
        });
        rows.push(Row {
            id: "Fig 11",
            what: "battery DoD cycles per day".into(),
            paper: "≈2".into(),
            measured: format!("{:.1}", gh.battery_cycles),
        });
    }

    // ---- Figure 12: grid budget sweep ------------------------------------
    {
        let gain_at = |budget: f64| {
            let base = Scenario {
                grid_budget: Watts::new(budget),
                ..Scenario::paper_runtime(PolicyKind::Uniform)
            };
            let o =
                compare_policies(&base, &[PolicyKind::Uniform, PolicyKind::GreenHetero]).unwrap();
            let night = |r: &RunReport| {
                r.mean_throughput_where(|e| {
                    e.solar.value() < 5.0 && e.battery_discharge.value() == 0.0
                })
                .value()
            };
            night(&o[1].report) / night(&o[0].report).max(1e-9)
        };
        let tight = gain_at(600.0);
        let ample = gain_at(1400.0);
        rows.push(Row {
            id: "Fig 12",
            what: "gain shrinks as grid budget grows".into(),
            paper: "monotone ↓".into(),
            measured: format!("600 W: {tight:.2}x → 1400 W: {ample:.2}x"),
        });
    }

    // ---- Figure 13: combinations -----------------------------------------
    {
        for (comb, paper) in [
            (Combination::Comb1, "≈1.5x"),
            (Combination::Comb2, "≈1.03x"),
            (Combination::Comb3, "≈1.5x"),
            (Combination::Comb4, "≈1.03x"),
            (Combination::Comb5, "≈1.6x"),
        ] {
            let base = Scenario {
                combination: comb,
                ..Scenario::workload_study(WorkloadKind::SpecJbb, PolicyKind::Uniform)
            };
            let o =
                compare_policies(&base, &[PolicyKind::Uniform, PolicyKind::GreenHetero]).unwrap();
            let g = o[1].report.mean_scarce_throughput().value()
                / o[0].report.mean_scarce_throughput().value();
            rows.push(Row {
                id: "Fig 13",
                what: format!("{comb} gain (SPECjbb)"),
                paper: paper.into(),
                measured: format!("{g:.2}x"),
            });
        }
    }

    // ---- Figure 14: GPU combination ---------------------------------------
    {
        let mut gains = Vec::new();
        let mut srad = 0.0;
        let mut cfd = 0.0;
        for w in WorkloadKind::COMB6_SET {
            let base = Scenario {
                combination: Combination::Comb6,
                ..Scenario::workload_study(w, PolicyKind::Uniform)
            };
            let o =
                compare_policies(&base, &[PolicyKind::Uniform, PolicyKind::GreenHetero]).unwrap();
            let g = o[1].report.mean_scarce_throughput().value()
                / o[0].report.mean_scarce_throughput().value();
            gains.push(g);
            if w == WorkloadKind::SradV1 {
                srad = g;
            }
            if w == WorkloadKind::Cfd {
                cfd = g;
            }
        }
        rows.push(Row {
            id: "Fig 14",
            what: "Srad_v1 gain on GPU rack".into(),
            paper: "≈4.6x".into(),
            measured: format!("{srad:.2}x"),
        });
        rows.push(Row {
            id: "Fig 14",
            what: "mean gain on GPU rack".into(),
            paper: "≈2.5x".into(),
            measured: format!("{:.2}x", geometric_mean(&gains).unwrap_or(1.0)),
        });
        rows.push(Row {
            id: "Fig 14",
            what: "Cfd gain (smallest)".into(),
            paper: "smallest".into(),
            measured: format!("{cfd:.2}x"),
        });
    }

    // ---- Tables ------------------------------------------------------------
    rows.push(Row {
        id: "Tab I",
        what: "workload catalog".into(),
        paper: "16 workloads / 4 suites".into(),
        measured: format!("{} workloads", WorkloadKind::ALL.len()),
    });
    rows.push(Row {
        id: "Tab II",
        what: "platform catalog".into(),
        paper: "6 platforms".into(),
        measured: format!(
            "{} platforms",
            greenhetero_server::platform::PlatformKind::ALL.len()
        ),
    });
    rows.push(Row {
        id: "Tab III",
        what: "policies".into(),
        paper: "5 policies".into(),
        measured: format!("{} policies", policy_order().len()),
    });
    rows.push(Row {
        id: "Tab IV",
        what: "combinations".into(),
        paper: "6 combinations".into(),
        measured: format!("{} combinations", Combination::ALL.len()),
    });

    println!();
    table_header(&["Experiment", "Quantity", "Paper", "Measured"]);
    for r in &rows {
        table_row(&[
            r.id.to_string(),
            r.what.clone(),
            r.paper.clone(),
            r.measured.clone(),
        ]);
    }
}
