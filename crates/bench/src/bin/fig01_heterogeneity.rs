//! Figure 1 — numbers of server configurations in ten Google datacenters
//! (the paper's motivation data, after Mars et al., ISCA'13).

use greenhetero_bench::{banner, bar, table_header, table_row};
use greenhetero_server::fleet::{fraction_with_at_most, histogram, GOOGLE_DC_CONFIG_COUNTS};

fn main() {
    banner(
        "Figure 1",
        "Numbers of server configurations in ten different Google datacenters",
    );
    table_header(&["Datacenter", "Configurations", ""]);
    for (i, &n) in GOOGLE_DC_CONFIG_COUNTS.iter().enumerate() {
        table_row(&[
            format!("DC{}", i + 1),
            n.to_string(),
            bar(f64::from(n), 5.0, 20),
        ]);
    }
    println!();
    println!("histogram: {:?}", histogram());
    println!(
        "datacenters with 2–3 configurations: {:.0}% (the paper: ≈80%)",
        fraction_with_at_most(3) * 100.0
    );
}
