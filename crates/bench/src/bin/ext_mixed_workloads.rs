//! Extension experiment — mixed workloads on one rack.
//!
//! The paper runs one workload across the rack and leaves "more complex
//! cases as future work". The controller's database is keyed by
//! (configuration, workload) pairs, so per-group workloads come for free:
//! here the dual-socket Xeons crunch a batch job while the i5s serve an
//! interactive service, and the solver must trade *batch throughput*
//! against *service throughput* through their very different
//! power-response curves.

use greenhetero_bench::{banner, policy_order, table_header, table_row};
use greenhetero_core::policies::PolicyKind;
use greenhetero_server::platform::PlatformKind;
use greenhetero_server::workload::WorkloadKind;
use greenhetero_sim::runner::compare_policies;
use greenhetero_sim::scenario::Scenario;

type Mix = (&'static str, Vec<(PlatformKind, u32, WorkloadKind)>);

fn main() {
    banner(
        "Extension: mixed workloads",
        "Xeons on Streamcluster + i5s on Memcached, one rack, one green budget",
    );

    let mixes: [Mix; 3] = [
        (
            "batch on Xeons, service on i5s",
            vec![
                (PlatformKind::XeonE52620, 5, WorkloadKind::Streamcluster),
                (PlatformKind::CoreI54460, 5, WorkloadKind::Memcached),
            ],
        ),
        (
            "service on Xeons, batch on i5s",
            vec![
                (PlatformKind::XeonE52620, 5, WorkloadKind::Memcached),
                (PlatformKind::CoreI54460, 5, WorkloadKind::Streamcluster),
            ],
        ),
        (
            "three groups, three workloads",
            vec![
                (PlatformKind::XeonE52620, 4, WorkloadKind::Streamcluster),
                (PlatformKind::XeonE52603, 4, WorkloadKind::Mcf),
                (PlatformKind::CoreI54460, 4, WorkloadKind::Memcached),
            ],
        ),
    ];

    let policies = policy_order();
    let mut header: Vec<&str> = vec!["Mix"];
    let names: Vec<&str> = policies.iter().map(|p| p.name()).collect();
    header.extend(&names);
    table_header(&header);

    for (label, composition) in &mixes {
        let base = Scenario {
            mixed: Some(composition.clone()),
            ..Scenario::workload_study(WorkloadKind::SpecJbb, PolicyKind::Uniform)
        };
        let outcomes = compare_policies(&base, &policies).expect("simulations run");
        let baseline = outcomes[0].report.mean_scarce_throughput().value();
        let mut cells = vec![(*label).to_string()];
        for o in &outcomes {
            cells.push(format!(
                "{:.2}x",
                o.report.mean_scarce_throughput().value() / baseline
            ));
        }
        table_row(&cells);
    }

    println!();
    println!("note: throughputs of different workloads are summed in their native units, so");
    println!("absolute numbers mix apples and oranges — the per-policy *ratios* are the result");
}
