//! Figure 14 — performance of Comb6 (Xeon E5-2620 + Titan Xp GPU) for the
//! Rodinia workloads, five policies, normalized to Uniform.
//!
//! Paper shape: GreenHetero best everywhere; Srad_v1 gains up to 4.6×
//! (the GPU dwarfs the CPU on it, and Uniform starves the 149 W-idle GPU);
//! Cfd gains least (CPU and GPU perform similarly); mean ≈ 2.5×.

use greenhetero_bench::{banner, policy_order, table_header, table_row};
use greenhetero_core::metrics::geometric_mean;
use greenhetero_core::policies::PolicyKind;
use greenhetero_server::rack::Combination;
use greenhetero_server::workload::WorkloadKind;
use greenhetero_sim::runner::compare_policies;
use greenhetero_sim::scenario::Scenario;

fn main() {
    banner(
        "Figure 14",
        "Performance of Comb6 (E5-2620 + Titan Xp) for the Rodinia workloads (normalized to Uniform)",
    );

    let policies = policy_order();
    let mut header: Vec<&str> = vec!["Workload"];
    let names: Vec<&str> = policies.iter().map(|p| p.name()).collect();
    header.extend(&names);
    table_header(&header);

    let mut gh_gains = Vec::new();
    for workload in WorkloadKind::COMB6_SET {
        let base = Scenario {
            combination: Combination::Comb6,
            ..Scenario::workload_study(workload, PolicyKind::Uniform)
        };
        let outcomes = compare_policies(&base, &policies).expect("simulations run");
        let baseline = outcomes[0].report.mean_scarce_throughput().value();
        let mut cells = vec![workload.to_string()];
        for o in &outcomes {
            let gain = o.report.mean_scarce_throughput().value() / baseline;
            cells.push(format!("{gain:.2}x"));
            if o.policy == PolicyKind::GreenHetero {
                gh_gains.push(gain);
            }
        }
        table_row(&cells);
    }

    println!();
    println!(
        "GreenHetero vs Uniform on the GPU rack: geo-mean {:.2}x, best {:.2}x",
        geometric_mean(&gh_gains).unwrap_or(1.0),
        gh_gains.iter().cloned().fold(f64::MIN, f64::max),
    );
    println!("paper reports: mean ≈2.5x, Srad_v1 up to 4.6x, Cfd smallest (CPU ≈ GPU)");
}
