//! `bench_snapshot` — one-shot performance snapshot of the telemetry-
//! instrumented simulator, written as a single flat JSON object
//! (`BENCH_telemetry.json`) so CI can validate and archive it.
//!
//! The snapshot runs the paper's Fig. 8 runtime scenario (GreenHetero,
//! High solar) with a collecting telemetry sink and reports:
//!
//! * per-epoch wall-time p50/p99/mean from the run's own
//!   `greenhetero_epoch_wall_seconds` histogram;
//! * exact solver-latency p50/p99 from a timed hot loop over a 3-type
//!   allocation problem (sorted samples, not histogram buckets);
//! * telemetry event throughput (epoch events per second of run wall
//!   time).
//!
//! Flags (all optional): `--days N` (default 1), `--servers N` servers
//! per type (default 5), `--out PATH` (default `BENCH_telemetry.json`),
//! and `--validate PATH` to schema-check an existing snapshot instead of
//! benchmarking.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use greenhetero_core::database::{PerfModel, Quadratic};
use greenhetero_core::policies::PolicyKind;
use greenhetero_core::solver::{solve, AllocationProblem, ServerGroup};
use greenhetero_core::telemetry::{names, CollectingSink, EventLine};
use greenhetero_core::types::{ConfigId, PowerRange, Watts};
use greenhetero_sim::engine::run_scenario;
use greenhetero_sim::scenario::{Scenario, TelemetrySpec};

/// Keys every snapshot must carry, all with finite numeric values.
const SCHEMA_KEYS: &[&str] = &[
    "schema_version",
    "days",
    "servers_per_type",
    "epochs",
    "epoch_wall_p50_us",
    "epoch_wall_p99_us",
    "epoch_wall_mean_us",
    "solver_p50_us",
    "solver_p99_us",
    "solver_calls",
    "events_per_sec",
    "run_wall_ms",
];

struct Args {
    days: u64,
    servers: u32,
    out: PathBuf,
    validate: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        days: 1,
        servers: 5,
        out: PathBuf::from("BENCH_telemetry.json"),
        validate: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--days" => parsed.days = value("--days").parse().expect("--days takes an integer"),
            "--servers" => {
                parsed.servers = value("--servers")
                    .parse()
                    .expect("--servers takes an integer");
            }
            "--out" => parsed.out = PathBuf::from(value("--out")),
            "--validate" => parsed.validate = Some(PathBuf::from(value("--validate"))),
            other => panic!("unknown flag {other}; see the module docs for usage"),
        }
    }
    parsed
}

/// Validates an existing snapshot file against [`SCHEMA_KEYS`]. Returns
/// an error message on the first violation.
fn validate_snapshot(path: &PathBuf) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let line = text.trim();
    let event = EventLine::parse(line).ok_or("snapshot is not a flat JSON object")?;
    for key in SCHEMA_KEYS {
        let value = event
            .num(key)
            .ok_or_else(|| format!("missing or non-numeric key {key}"))?;
        if !value.is_finite() {
            return Err(format!("key {key} is not finite: {value}"));
        }
        if value < 0.0 {
            return Err(format!("key {key} is negative: {value}"));
        }
    }
    Ok(())
}

/// The 3-type allocation problem the solver hot loop exercises (matches
/// the `solver` micro-benchmark's mid-size case).
fn solver_problem() -> AllocationProblem {
    let groups: Vec<ServerGroup> = (0..3u32)
        .map(|i| {
            let idle = 40.0 + f64::from(i) * 12.0;
            let peak = 90.0 + f64::from(i) * 22.0;
            ServerGroup::new(
                ConfigId::new(i),
                5,
                PerfModel::new(
                    Quadratic {
                        l: -500.0 - f64::from(i) * 100.0,
                        m: 30.0 + f64::from(i) * 5.0,
                        n: -0.06 - f64::from(i) * 0.01,
                    },
                    PowerRange::new(Watts::new(idle), Watts::new(peak)).unwrap(),
                ),
            )
            .unwrap()
        })
        .collect();
    let budget: f64 = groups.iter().map(|g| g.group_peak().value()).sum::<f64>() * 0.7;
    AllocationProblem::new(groups, Watts::new(budget)).unwrap()
}

/// Exact quantile from a sorted sample vector (nearest-rank).
fn percentile_us(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() {
    let args = parse_args();

    if let Some(path) = &args.validate {
        match validate_snapshot(path) {
            Ok(()) => {
                println!("{} matches the bench_snapshot schema", path.display());
                return;
            }
            Err(reason) => {
                eprintln!("{} failed validation: {reason}", path.display());
                std::process::exit(1);
            }
        }
    }

    // 1. The Fig. 8 runtime scenario with a collecting sink.
    let sink = Arc::new(CollectingSink::new());
    let scenario = Scenario {
        days: args.days,
        servers_per_type: args.servers,
        telemetry: TelemetrySpec::Sink(sink.clone()),
        ..Scenario::paper_runtime(PolicyKind::GreenHetero)
    };
    let started = Instant::now();
    let report = run_scenario(scenario).expect("Fig. 8 scenario runs");
    let run_wall = started.elapsed();

    let epochs = report.epochs.len();
    let events = sink.epochs().len();
    assert_eq!(events, epochs, "one telemetry event per epoch");
    let events_per_sec = events as f64 / run_wall.as_secs_f64().max(1e-9);

    let wall_hist = report
        .ledger
        .histogram(names::EPOCH_WALL_SECONDS)
        .expect("epoch wall-time histogram registered");
    let epoch_mean_us = if wall_hist.count > 0 {
        wall_hist.sum / wall_hist.count as f64 * 1e6
    } else {
        0.0
    };

    // 2. Solver hot loop: exact percentiles over individually timed calls.
    let problem = solver_problem();
    let solver_calls = 2_000usize;
    let mut samples_us = Vec::with_capacity(solver_calls);
    for _ in 0..solver_calls {
        let t = Instant::now();
        let allocation = solve(std::hint::black_box(&problem)).expect("solver succeeds");
        std::hint::black_box(allocation);
        samples_us.push(t.elapsed().as_secs_f64() * 1e6);
    }
    samples_us.sort_by(f64::total_cmp);

    // 3. The flat JSON snapshot, keys in SCHEMA_KEYS order.
    let mut json = String::from("{");
    let push = |json: &mut String, key: &str, value: f64| {
        if json.len() > 1 {
            json.push_str(", ");
        }
        let _ = write!(json, "\"{key}\": {value}");
    };
    push(&mut json, "schema_version", 1.0);
    push(&mut json, "days", args.days as f64);
    push(&mut json, "servers_per_type", f64::from(args.servers));
    push(&mut json, "epochs", epochs as f64);
    push(&mut json, "epoch_wall_p50_us", wall_hist.p50 * 1e6);
    push(&mut json, "epoch_wall_p99_us", wall_hist.p99 * 1e6);
    push(&mut json, "epoch_wall_mean_us", epoch_mean_us);
    push(&mut json, "solver_p50_us", percentile_us(&samples_us, 0.50));
    push(&mut json, "solver_p99_us", percentile_us(&samples_us, 0.99));
    push(&mut json, "solver_calls", solver_calls as f64);
    push(&mut json, "events_per_sec", events_per_sec);
    push(&mut json, "run_wall_ms", run_wall.as_secs_f64() * 1e3);
    json.push_str("}\n");

    std::fs::write(&args.out, &json).expect("snapshot file is writable");
    println!("wrote {}", args.out.display());
    println!(
        "{} epochs in {:.0} ms; epoch wall p50 {:.0} us, p99 {:.0} us; \
         solver p50 {:.1} us, p99 {:.1} us; {:.0} events/s",
        epochs,
        run_wall.as_secs_f64() * 1e3,
        wall_hist.p50 * 1e6,
        wall_hist.p99 * 1e6,
        percentile_us(&samples_us, 0.50),
        percentile_us(&samples_us, 0.99),
        events_per_sec
    );
}
