//! `bench_snapshot` — one-shot performance snapshot of the telemetry-
//! instrumented simulator, written as a single flat JSON object
//! (`BENCH_telemetry.json`) so CI can validate and archive it.
//!
//! The snapshot runs the paper's Fig. 8 runtime scenario (GreenHetero,
//! High solar) with a collecting telemetry sink and reports:
//!
//! * per-epoch wall-time p50/p99/mean from the run's own
//!   `greenhetero_epoch_wall_seconds` histogram;
//! * exact solver-latency p50/p99 from a timed hot loop over a 3-type
//!   allocation problem (sorted samples, not histogram buckets);
//! * telemetry event throughput (epoch events per second of run wall
//!   time).
//!
//! It also benchmarks the solver fast path in isolation and writes a
//! second snapshot (`BENCH_solver.json`): cold max-of-engines solves
//! versus warm-started and cache-hit solves over a drifting budget
//! sequence, the cache hit rate, and heap allocations per solve from a
//! counting global allocator.
//!
//! With `--fleet`, it instead benchmarks the work-stealing epoch
//! scheduler end to end and writes `BENCH_fleet.json`
//! (`--fleet-out PATH`) with three measurements:
//!
//! * the headline fleet: a 1,000-rack (`--racks N`) one-day fleet
//!   stepped in lock-step at 1, 2, 4, and 8 workers — wall times,
//!   scaling efficiency, rack-epoch throughput, peak RSS per rack, and
//!   a boolean `scaling_gated` recording whether the machine had the
//!   ≥ 4 cores needed to actually measure the 2x scaling floor;
//! * the daemon point: `--sessions N` (default 1,000) serve sessions
//!   hosted in-process on the bounded session pool — wall time plus the
//!   peak daemon-attributable OS thread count against the structural
//!   `cores + 4` cap (pool workers + accept + spawner + watchdog, with
//!   one thread of slack), proving thread count does not grow with
//!   session count;
//! * the memory point: a homogeneous zero-noise `--racks100k N`
//!   (default 100,000) fleet run last, so the process's `VmHWM`
//!   high-water mark afterwards bounds its resident footprint — RSS per
//!   rack against the 80 kB/rack budget, plus the shared-solve reuse
//!   rate of the fleet-wide cache.
//!
//! Validating a fleet snapshot enforces the structural gates (thread
//! cap, RSS budget, reuse floor) unconditionally and the wall-clock
//! scaling floor only when `scaling_gated` is true, rejecting snapshots
//! whose flag contradicts their recorded core count — a snapshot may
//! not advertise a floor it never measured. Every gate failure names
//! the offending key, the observed value, and the required bound.
//!
//! Flags (all optional): `--days N` (default 1), `--servers N` servers
//! per type (default 5), `--out PATH` (default `BENCH_telemetry.json`),
//! `--solver-out PATH` (default `BENCH_solver.json`), `--fleet`,
//! `--racks N` (default 1000), `--sessions N` (default 1000),
//! `--racks100k N` (default 100000), `--epoch-secs N` (override the
//! epoch length for the fleet/session benches — CI uses 3600 for a
//! reduced 24-epoch day), `--fleet-out PATH` (default
//! `BENCH_fleet.json`), and `--validate PATH` to schema-check an
//! existing snapshot (any kind, auto-detected) instead of benchmarking.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use greenhetero_core::database::{PerfModel, Quadratic};
use greenhetero_core::policies::PolicyKind;
use greenhetero_core::solver::{
    solve, AllocationProblem, FastPathConfig, ServerGroup, SolverFastPath,
};
use greenhetero_core::telemetry::{names, CollectingSink, EventLine};
use greenhetero_core::types::{ConfigId, PowerRange, SimDuration, Watts};
use greenhetero_serve::{Daemon, ServeConfig, SessionSpec};
use greenhetero_sim::engine::run_scenario;
use greenhetero_sim::fleet::FleetSpec;
use greenhetero_sim::scenario::{Scenario, TelemetrySpec};

/// A pass-through system allocator that counts allocation calls, so the
/// snapshot can report allocations-per-solve for the hot loops.
struct CountingAlloc;

/// Total heap allocation calls since process start.
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers every operation to `System`; the counter is a relaxed
// atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Keys every telemetry snapshot must carry, all with finite numeric
/// values.
const SCHEMA_KEYS: &[&str] = &[
    "schema_version",
    "days",
    "servers_per_type",
    "epochs",
    "epoch_wall_p50_us",
    "epoch_wall_p99_us",
    "epoch_wall_mean_us",
    "solver_p50_us",
    "solver_p99_us",
    "solver_calls",
    "events_per_sec",
    "run_wall_ms",
];

/// Keys every solver fast-path snapshot must carry, all with finite
/// numeric values.
const SOLVER_SCHEMA_KEYS: &[&str] = &[
    "schema_version",
    "solver_calls",
    "cold_p50_us",
    "cold_p99_us",
    "warm_p50_us",
    "warm_p99_us",
    "cached_p50_us",
    "cached_p99_us",
    "speedup_warm_p50",
    "cache_hit_rate",
    "allocs_per_cold_solve",
    "allocs_per_warm_solve",
];

/// Keys every fleet snapshot must carry, all with finite numeric
/// values. (`scaling_gated`, the one boolean key, is checked
/// separately.)
const FLEET_SCHEMA_KEYS: &[&str] = &[
    "schema_version",
    "racks",
    "epochs",
    "rack_epochs",
    "cores",
    "w1_secs",
    "w2_secs",
    "w4_secs",
    "w8_secs",
    "scaling_w2",
    "scaling_w4",
    "scaling_w8",
    "racks_per_sec",
    "rack_epochs_per_sec",
    "peak_rss_mb",
    "rss_kb_per_rack",
    "sessions",
    "sessions_secs",
    "sessions_peak_threads",
    "sessions_thread_cap",
    "racks100k",
    "racks100k_epochs",
    "racks100k_secs",
    "racks100k_rack_epochs_per_sec",
    "racks100k_rss_kb_per_rack",
    "shared_solve_reuse_rate",
];

/// RSS budget per rack for the large-fleet memory point, kilobytes.
const RSS_KB_PER_RACK_CEILING: f64 = 80.0;

struct Args {
    days: u64,
    servers: u32,
    out: PathBuf,
    solver_out: PathBuf,
    fleet: bool,
    racks: u32,
    sessions: u32,
    racks100k: u32,
    epoch_secs: Option<u64>,
    fleet_out: PathBuf,
    validate: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        days: 1,
        servers: 5,
        out: PathBuf::from("BENCH_telemetry.json"),
        solver_out: PathBuf::from("BENCH_solver.json"),
        fleet: false,
        racks: 1000,
        sessions: 1000,
        racks100k: 100_000,
        epoch_secs: None,
        fleet_out: PathBuf::from("BENCH_fleet.json"),
        validate: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--days" => parsed.days = value("--days").parse().expect("--days takes an integer"),
            "--servers" => {
                parsed.servers = value("--servers")
                    .parse()
                    .expect("--servers takes an integer");
            }
            "--out" => parsed.out = PathBuf::from(value("--out")),
            "--solver-out" => parsed.solver_out = PathBuf::from(value("--solver-out")),
            "--fleet" => parsed.fleet = true,
            "--racks" => {
                parsed.racks = value("--racks").parse().expect("--racks takes an integer");
            }
            "--sessions" => {
                parsed.sessions = value("--sessions")
                    .parse()
                    .expect("--sessions takes an integer");
            }
            "--racks100k" => {
                parsed.racks100k = value("--racks100k")
                    .parse()
                    .expect("--racks100k takes an integer");
            }
            "--epoch-secs" => {
                parsed.epoch_secs = Some(
                    value("--epoch-secs")
                        .parse()
                        .expect("--epoch-secs takes an integer"),
                );
            }
            "--fleet-out" => parsed.fleet_out = PathBuf::from(value("--fleet-out")),
            "--validate" => parsed.validate = Some(PathBuf::from(value("--validate"))),
            other => panic!("unknown flag {other}; see the module docs for usage"),
        }
    }
    parsed
}

/// Formats one uniform gate-failure message: the offending key, the
/// observed value, and the required bound, always in the same shape so
/// CI logs and humans can grep them.
fn gate_failure(key: &str, observed: impl std::fmt::Display, required: &str) -> String {
    format!("{key} = {observed} violates required {required}")
}

/// A floor gate: `observed >= floor` or a uniform failure message.
fn gate_floor(key: &str, observed: f64, floor: f64) -> Result<(), String> {
    if observed >= floor {
        Ok(())
    } else {
        Err(gate_failure(
            key,
            format!("{observed:.4}"),
            &format!("floor {floor}"),
        ))
    }
}

/// A ceiling gate: `observed <= ceiling` or a uniform failure message.
fn gate_ceiling(key: &str, observed: f64, ceiling: f64) -> Result<(), String> {
    if observed <= ceiling {
        Ok(())
    } else {
        Err(gate_failure(
            key,
            format!("{observed:.4}"),
            &format!("ceiling {ceiling}"),
        ))
    }
}

/// A range gate: `observed` within `[lo, hi]` or a uniform failure
/// message.
fn gate_range(key: &str, observed: f64, lo: f64, hi: f64) -> Result<(), String> {
    if (lo..=hi).contains(&observed) {
        Ok(())
    } else {
        Err(gate_failure(
            key,
            format!("{observed:.4}"),
            &format!("range [{lo}, {hi}]"),
        ))
    }
}

/// Validates an existing snapshot file. The schema is auto-detected:
/// solver fast-path snapshots carry `cold_p50_us`, fleet snapshots carry
/// `scaling_w4`, telemetry snapshots carry neither. Returns an error
/// message on the first violation; every message names the offending
/// key, the observed value, and the required bound.
fn validate_snapshot(path: &PathBuf) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let line = text.trim();
    let event = EventLine::parse(line).ok_or("snapshot is not a flat JSON object")?;
    let is_solver = event.num("cold_p50_us").is_some();
    let is_fleet = event.num("scaling_w4").is_some();
    let keys = if is_solver {
        SOLVER_SCHEMA_KEYS
    } else if is_fleet {
        FLEET_SCHEMA_KEYS
    } else {
        SCHEMA_KEYS
    };
    for key in keys {
        let value = event.num(key).ok_or_else(|| {
            gate_failure(key, "<missing or non-numeric>", "a finite numeric value")
        })?;
        if !value.is_finite() {
            return Err(gate_failure(key, value, "a finite numeric value"));
        }
        if value < 0.0 {
            return Err(gate_failure(key, value, "a non-negative value"));
        }
    }
    if is_solver {
        // The fast path's reason to exist: warm solves must hold a 3×
        // median speedup over cold max-of-engines solves, and the
        // quantized cache must actually hit on a revisiting sequence.
        gate_floor(
            "speedup_warm_p50",
            event.num("speedup_warm_p50").unwrap_or(0.0),
            3.0,
        )?;
        let hit_rate = event.num("cache_hit_rate").unwrap_or(0.0);
        gate_range("cache_hit_rate", hit_rate, 0.0, 1.0)?;
        gate_floor("cache_hit_rate", hit_rate, 0.5)?;
    }
    if is_fleet {
        // Wall-clock scaling: lock-step work stealing must actually
        // scale — but the floor only binds when the recording machine
        // had the cores to show it, and the snapshot must say so
        // honestly via `scaling_gated`, so a floor that was never
        // measured cannot silently pass as one that was.
        let scaling = event.num("scaling_w4").unwrap_or(0.0);
        let cores = event.num("cores").unwrap_or(0.0);
        let gated = event.flag("scaling_gated").ok_or_else(|| {
            gate_failure("scaling_gated", "<missing or non-boolean>", "a boolean")
        })?;
        if gated {
            if cores < 4.0 {
                return Err(gate_failure(
                    "scaling_gated",
                    "true",
                    &format!("cores >= 4 to have measured the floor (cores = {cores:.0})"),
                ));
            }
            gate_floor("scaling_w4", scaling, 2.0)?;
        } else {
            if cores >= 4.0 {
                return Err(gate_failure(
                    "scaling_gated",
                    "false",
                    &format!("true on a {cores:.0}-core machine (the 2x floor was measurable)"),
                ));
            }
            println!(
                "note: snapshot recorded on {cores:.0} cores (scaling_gated: false); \
                 2x scaling floor at 4 workers was not measurable"
            );
            if scaling <= 0.0 {
                return Err(gate_failure("scaling_w4", scaling, "a positive value"));
            }
        }
        // Structural gates hold on any machine — they are counts and
        // budgets, not wall-clock races.
        //
        // The bounded pool's reason to exist: the daemon's peak
        // thread bill must not grow with the session count.
        gate_ceiling(
            "sessions_peak_threads",
            event.num("sessions_peak_threads").unwrap_or(f64::MAX),
            event.num("sessions_thread_cap").unwrap_or(0.0),
        )
        .map_err(|e| format!("{e} (sessions_thread_cap)"))?;
        // The streaming fleet state's reason to exist: resident memory
        // per rack stays under the budget even at 100k racks.
        gate_ceiling(
            "racks100k_rss_kb_per_rack",
            event.num("racks100k_rss_kb_per_rack").unwrap_or(f64::MAX),
            RSS_KB_PER_RACK_CEILING,
        )?;
        // The shared solve cache's reason to exist: a homogeneous fleet
        // must reuse nearly every solve.
        let reuse = event.num("shared_solve_reuse_rate").unwrap_or(-1.0);
        gate_range("shared_solve_reuse_rate", reuse, 0.0, 1.0)?;
        gate_floor("shared_solve_reuse_rate", reuse, 0.9)?;
    }
    Ok(())
}

/// Peak resident set size of this process (`VmHWM`), in kilobytes, or 0
/// where `/proc` is unavailable.
fn peak_rss_kb() -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status.lines().find_map(|line| {
                line.strip_prefix("VmHWM:")?
                    .trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse::<f64>()
                    .ok()
            })
        })
        .unwrap_or(0.0)
}

/// Current thread count of this process, from `/proc/self/status`, or
/// 0 where `/proc` is unavailable.
fn process_threads() -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find_map(|line| line.strip_prefix("Threads:")?.trim().parse::<f64>().ok())
        })
        .unwrap_or(0.0)
}

/// The daemon point: hosts `args.sessions` serve sessions in-process on
/// the bounded session pool and measures wall time plus the peak
/// daemon-attributable thread count. Returns
/// `(secs, peak_threads, thread_cap)` where `peak_threads` is the
/// thread high-water delta over the pre-daemon baseline and the cap is
/// the structural `cores + 4` bill (pool workers + accept + spawner +
/// watchdog, with one thread of slack).
fn bench_sessions(args: &Args, cores: usize) -> (f64, f64, f64) {
    let threads_before = process_threads();
    let daemon = Daemon::start(ServeConfig {
        max_sessions: args.sessions as usize,
        admission_queue_depth: 64,
        drain_deadline_ms: 600_000,
        ..ServeConfig::default()
    })
    .expect("bench daemon starts");
    let supervisor = daemon.supervisor();
    let started = Instant::now();
    for i in 0..args.sessions {
        let mut spec = SessionSpec::named(&format!("bench-{i:05}"));
        spec.days = args.days;
        spec.servers_per_type = args.servers;
        if let Some(secs) = args.epoch_secs {
            spec.controller.epoch_len = SimDuration::from_secs(secs);
        }
        loop {
            match supervisor.submit(spec.clone()) {
                Ok(_) => break,
                Err(("backpressure", _)) => {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                Err((reason, msg)) => panic!("bench session rejected: {reason}: {msg}"),
            }
        }
    }
    let mut peak_threads = process_threads();
    loop {
        peak_threads = peak_threads.max(process_threads());
        let snap = supervisor.status();
        if snap.active() == 0 {
            assert_eq!(
                snap.finished,
                u64::from(args.sessions),
                "every bench session must finish cleanly"
            );
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let secs = started.elapsed().as_secs_f64();
    let report = daemon.drain();
    assert_eq!(report.leaked, 0, "bench drain must not leak sessions");
    let peak_delta = (peak_threads - threads_before).max(0.0);
    let cap = cores as f64 + 4.0;
    println!(
        "sessions: {} sessions finished in {secs:.2} s on {} daemon threads \
         (cap {cap:.0}: {cores} pool workers + accept + spawner + watchdog + slack)",
        args.sessions, peak_delta
    );
    (secs, peak_delta, cap)
}

/// Benchmarks the work-stealing epoch scheduler end to end: the
/// `racks`-rack headline fleet at 1, 2, 4, and 8 workers, the
/// `sessions`-session daemon point on the bounded pool, and the
/// homogeneous `racks100k`-rack memory point, writing the
/// `BENCH_fleet.json` snapshot.
fn bench_fleet(args: &Args) {
    let scenario_base = |policy| {
        let mut scenario = Scenario {
            days: args.days,
            servers_per_type: args.servers,
            ..Scenario::paper_runtime(policy)
        };
        if let Some(secs) = args.epoch_secs {
            scenario.controller.epoch_len = SimDuration::from_secs(secs);
        }
        scenario
    };
    let spec_for = |workers: usize| {
        let mut spec = FleetSpec::new(scenario_base(PolicyKind::GreenHetero), args.racks);
        spec.workers = workers;
        spec
    };

    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let mut wall_secs = [0.0f64; 4];
    let mut epochs = 0usize;
    for (slot, workers) in [1usize, 2, 4, 8].into_iter().enumerate() {
        let spec = spec_for(workers);
        let started = Instant::now();
        let report = spec.run().expect("fleet benchmark runs");
        wall_secs[slot] = started.elapsed().as_secs_f64();
        epochs = report.epochs.len();
        println!(
            "fleet: {} racks x {} epochs on {} workers in {:.2} s",
            args.racks, epochs, workers, wall_secs[slot]
        );
    }

    let best_secs = wall_secs.iter().copied().fold(f64::INFINITY, f64::min);
    let rack_epochs = f64::from(args.racks) * epochs as f64;

    // The honest-scaling gate: the 2x floor at 4 workers is only a
    // measurement when this machine could run 4 workers in parallel.
    let scaling_gated = cores >= 4;

    // VmHWM is a process-lifetime high-water mark, so read it before
    // the much larger fleet below inflates it: `rss_kb_per_rack` is a
    // claim about *this* fleet.
    let rss_kb = peak_rss_kb();

    // The daemon point: thousands of sessions on the bounded pool.
    let (sessions_secs, sessions_peak_threads, sessions_thread_cap) = bench_sessions(args, cores);

    // The memory point, run LAST so the process's VmHWM afterwards
    // bounds its resident footprint: two orders of magnitude past the
    // headline fleet, homogeneous and noise-free so every rack poses
    // bit-identical problems — the fleet-wide shared solve cache pays
    // one cold solve per distinct problem and the reuse rate approaches
    // (N-1)/N, while the streaming per-rack state keeps RSS/rack under
    // the budget.
    let big_racks: u32 = args.racks100k;
    let big_spec = FleetSpec::new(
        Scenario {
            meter_noise: Watts::new(0.0),
            perf_noise: 0.0,
            ..scenario_base(PolicyKind::GreenHetero)
        },
        big_racks,
    );
    let started = Instant::now();
    let big_report = big_spec.run().expect("large-fleet benchmark runs");
    let big_secs = started.elapsed().as_secs_f64();
    let big_epochs = big_report.epochs.len();
    let big_rack_epochs = f64::from(big_racks) * big_epochs as f64;
    let reuse = big_report.shared_solve.reuse_rate();
    let big_rss_kb = peak_rss_kb();
    let big_rss_kb_per_rack = big_rss_kb / f64::from(big_racks.max(1));
    println!(
        "fleet: {big_racks} homogeneous zero-noise racks x {big_epochs} epochs in \
         {big_secs:.2} s; shared-solve reuse rate {reuse:.4}; \
         peak RSS {:.1} MB ({big_rss_kb_per_rack:.2} kB/rack)",
        big_rss_kb / 1024.0
    );

    let mut json = String::from("{");
    let push = |json: &mut String, key: &str, value: f64| {
        if json.len() > 1 {
            json.push_str(", ");
        }
        let _ = write!(json, "\"{key}\": {value}");
    };
    push(&mut json, "schema_version", 1.0);
    push(&mut json, "racks", f64::from(args.racks));
    push(&mut json, "epochs", epochs as f64);
    push(&mut json, "rack_epochs", rack_epochs);
    push(&mut json, "cores", cores as f64);
    push(&mut json, "w1_secs", wall_secs[0]);
    push(&mut json, "w2_secs", wall_secs[1]);
    push(&mut json, "w4_secs", wall_secs[2]);
    push(&mut json, "w8_secs", wall_secs[3]);
    push(
        &mut json,
        "scaling_w2",
        wall_secs[0] / wall_secs[1].max(1e-9),
    );
    push(
        &mut json,
        "scaling_w4",
        wall_secs[0] / wall_secs[2].max(1e-9),
    );
    push(
        &mut json,
        "scaling_w8",
        wall_secs[0] / wall_secs[3].max(1e-9),
    );
    push(
        &mut json,
        "racks_per_sec",
        f64::from(args.racks) / best_secs.max(1e-9),
    );
    push(
        &mut json,
        "rack_epochs_per_sec",
        rack_epochs / best_secs.max(1e-9),
    );
    push(&mut json, "peak_rss_mb", rss_kb / 1024.0);
    push(
        &mut json,
        "rss_kb_per_rack",
        rss_kb / f64::from(args.racks.max(1)),
    );
    push(&mut json, "sessions", f64::from(args.sessions));
    push(&mut json, "sessions_secs", sessions_secs);
    push(&mut json, "sessions_peak_threads", sessions_peak_threads);
    push(&mut json, "sessions_thread_cap", sessions_thread_cap);
    push(&mut json, "racks100k", f64::from(big_racks));
    push(&mut json, "racks100k_epochs", big_epochs as f64);
    push(&mut json, "racks100k_secs", big_secs);
    push(
        &mut json,
        "racks100k_rack_epochs_per_sec",
        big_rack_epochs / big_secs.max(1e-9),
    );
    push(&mut json, "racks100k_rss_kb_per_rack", big_rss_kb_per_rack);
    push(&mut json, "shared_solve_reuse_rate", reuse);
    // The one boolean key: whether the 2x floor above was actually
    // measured on this machine.
    let _ = write!(json, ", \"scaling_gated\": {scaling_gated}");
    json.push_str("}\n");

    std::fs::write(&args.fleet_out, &json).expect("fleet snapshot file is writable");
    println!("wrote {}", args.fleet_out.display());
    println!(
        "fleet: best {:.2} s for {:.0} rack-epochs ({:.0}/s); scaling 1->4 workers {:.2}x \
         on {} cores; peak RSS {:.1} MB ({:.1} kB/rack)",
        best_secs,
        rack_epochs,
        rack_epochs / best_secs.max(1e-9),
        wall_secs[0] / wall_secs[2].max(1e-9),
        cores,
        rss_kb / 1024.0,
        rss_kb / f64::from(args.racks.max(1)),
    );
}

/// The 3-type allocation problem the solver hot loop exercises (matches
/// the `solver` micro-benchmark's mid-size case).
fn solver_problem() -> AllocationProblem {
    let groups: Vec<ServerGroup> = (0..3u32)
        .map(|i| {
            let idle = 40.0 + f64::from(i) * 12.0;
            let peak = 90.0 + f64::from(i) * 22.0;
            ServerGroup::new(
                ConfigId::new(i),
                5,
                PerfModel::new(
                    Quadratic {
                        l: -500.0 - f64::from(i) * 100.0,
                        m: 30.0 + f64::from(i) * 5.0,
                        n: -0.06 - f64::from(i) * 0.01,
                    },
                    PowerRange::new(Watts::new(idle), Watts::new(peak)).unwrap(),
                ),
            )
            .unwrap()
        })
        .collect();
    let budget: f64 = groups.iter().map(|g| g.group_peak().value()).sum::<f64>() * 0.7;
    AllocationProblem::new(groups, Watts::new(budget)).unwrap()
}

/// Exact quantile from a sorted sample vector (nearest-rank).
fn percentile_us(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Benchmarks the solver fast path in isolation — cold max-of-engines
/// solves versus warm-started and cache-hit solves — and writes the
/// `BENCH_solver.json` snapshot.
fn bench_fast_path(out: &PathBuf) {
    let base = solver_problem();
    let calls = 2_000usize;

    // A drifting budget sequence: a ±2 % triangle wave around the base
    // budget, small enough that the warm gate stays open on every step.
    let problems: Vec<AllocationProblem> = (0..calls)
        .map(|i| {
            let phase = (i % 40) as f64 / 40.0;
            let wobble = if phase < 0.5 { phase } else { 1.0 - phase };
            let factor = 0.98 + 0.08 * wobble;
            AllocationProblem::new(
                base.groups().to_vec(),
                Watts::new(base.budget().value() * factor),
            )
            .expect("drifted problem is valid")
        })
        .collect();

    // Cold: the combined max-of-engines solver, fresh scratch per call.
    let mut cold_us = Vec::with_capacity(calls);
    let before_cold = ALLOCATIONS.load(Ordering::Relaxed);
    for p in &problems {
        let t = Instant::now();
        std::hint::black_box(solve(std::hint::black_box(p)).expect("cold solve succeeds"));
        cold_us.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let cold_allocs = ALLOCATIONS.load(Ordering::Relaxed) - before_cold;

    // Warm: the fast path with its default config over the same drift
    // (one unmeasured call opens the gate).
    let mut fast = SolverFastPath::default();
    fast.solve(&problems[0]).expect("warmup solve succeeds");
    let mut warm_us = Vec::with_capacity(calls);
    let before_warm = ALLOCATIONS.load(Ordering::Relaxed);
    for p in &problems {
        let t = Instant::now();
        std::hint::black_box(
            fast.solve(std::hint::black_box(p))
                .expect("warm solve succeeds"),
        );
        warm_us.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let warm_allocs = ALLOCATIONS.load(Ordering::Relaxed) - before_warm;

    // Cached: a short rotation of recurring problems with the warm gate
    // off, so every answer flows through the quantized cache.
    let mut cached_path = SolverFastPath::new(FastPathConfig {
        warm_start: false,
        ..FastPathConfig::default()
    });
    let rotation: Vec<&AllocationProblem> = problems.iter().step_by(calls / 4).collect();
    let mut cached_us = Vec::with_capacity(calls);
    for i in 0..calls {
        let p = rotation[i % rotation.len()];
        let t = Instant::now();
        std::hint::black_box(
            cached_path
                .solve(std::hint::black_box(p))
                .expect("cached solve succeeds"),
        );
        cached_us.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let stats = cached_path.stats();
    let hit_rate = stats.cache_hits as f64 / (stats.cache_hits + stats.cache_misses).max(1) as f64;

    cold_us.sort_by(f64::total_cmp);
    warm_us.sort_by(f64::total_cmp);
    cached_us.sort_by(f64::total_cmp);
    let cold_p50 = percentile_us(&cold_us, 0.50);
    let warm_p50 = percentile_us(&warm_us, 0.50);
    let speedup = cold_p50 / warm_p50.max(1e-9);

    let mut json = String::from("{");
    let push = |json: &mut String, key: &str, value: f64| {
        if json.len() > 1 {
            json.push_str(", ");
        }
        let _ = write!(json, "\"{key}\": {value}");
    };
    push(&mut json, "schema_version", 1.0);
    push(&mut json, "solver_calls", calls as f64);
    push(&mut json, "cold_p50_us", cold_p50);
    push(&mut json, "cold_p99_us", percentile_us(&cold_us, 0.99));
    push(&mut json, "warm_p50_us", warm_p50);
    push(&mut json, "warm_p99_us", percentile_us(&warm_us, 0.99));
    push(&mut json, "cached_p50_us", percentile_us(&cached_us, 0.50));
    push(&mut json, "cached_p99_us", percentile_us(&cached_us, 0.99));
    push(&mut json, "speedup_warm_p50", speedup);
    push(&mut json, "cache_hit_rate", hit_rate);
    push(
        &mut json,
        "allocs_per_cold_solve",
        cold_allocs as f64 / calls as f64,
    );
    push(
        &mut json,
        "allocs_per_warm_solve",
        warm_allocs as f64 / calls as f64,
    );
    json.push_str("}\n");

    std::fs::write(out, &json).expect("solver snapshot file is writable");
    println!("wrote {}", out.display());
    println!(
        "solver fast path: cold p50 {cold_p50:.1} us, warm p50 {warm_p50:.1} us \
         ({speedup:.1}x), cached p50 {:.1} us; hit rate {hit_rate:.3}; \
         allocs/solve cold {:.1}, warm {:.1}",
        percentile_us(&cached_us, 0.50),
        cold_allocs as f64 / calls as f64,
        warm_allocs as f64 / calls as f64,
    );
}

fn main() {
    let args = parse_args();

    if let Some(path) = &args.validate {
        match validate_snapshot(path) {
            Ok(()) => {
                println!("{} matches the bench_snapshot schema", path.display());
                return;
            }
            Err(reason) => {
                eprintln!("{} failed validation: {reason}", path.display());
                std::process::exit(1);
            }
        }
    }

    if args.fleet {
        bench_fleet(&args);
        return;
    }

    // 1. The Fig. 8 runtime scenario with a collecting sink.
    let sink = Arc::new(CollectingSink::new());
    let scenario = Scenario {
        days: args.days,
        servers_per_type: args.servers,
        telemetry: TelemetrySpec::Sink(sink.clone()),
        ..Scenario::paper_runtime(PolicyKind::GreenHetero)
    };
    let started = Instant::now();
    let report = run_scenario(scenario).expect("Fig. 8 scenario runs");
    let run_wall = started.elapsed();

    let epochs = report.epochs.len();
    let events = sink.epochs().len();
    assert_eq!(events, epochs, "one telemetry event per epoch");
    let events_per_sec = events as f64 / run_wall.as_secs_f64().max(1e-9);

    let wall_hist = report
        .ledger
        .histogram(names::EPOCH_WALL_SECONDS)
        .expect("epoch wall-time histogram registered");
    let epoch_mean_us = if wall_hist.count > 0 {
        wall_hist.sum / wall_hist.count as f64 * 1e6
    } else {
        0.0
    };

    // 2. Solver hot loop: exact percentiles over individually timed calls.
    let problem = solver_problem();
    let solver_calls = 2_000usize;
    let mut samples_us = Vec::with_capacity(solver_calls);
    for _ in 0..solver_calls {
        let t = Instant::now();
        let allocation = solve(std::hint::black_box(&problem)).expect("solver succeeds");
        std::hint::black_box(allocation);
        samples_us.push(t.elapsed().as_secs_f64() * 1e6);
    }
    samples_us.sort_by(f64::total_cmp);

    // 3. The flat JSON snapshot, keys in SCHEMA_KEYS order.
    let mut json = String::from("{");
    let push = |json: &mut String, key: &str, value: f64| {
        if json.len() > 1 {
            json.push_str(", ");
        }
        let _ = write!(json, "\"{key}\": {value}");
    };
    push(&mut json, "schema_version", 1.0);
    push(&mut json, "days", args.days as f64);
    push(&mut json, "servers_per_type", f64::from(args.servers));
    push(&mut json, "epochs", epochs as f64);
    push(&mut json, "epoch_wall_p50_us", wall_hist.p50 * 1e6);
    push(&mut json, "epoch_wall_p99_us", wall_hist.p99 * 1e6);
    push(&mut json, "epoch_wall_mean_us", epoch_mean_us);
    push(&mut json, "solver_p50_us", percentile_us(&samples_us, 0.50));
    push(&mut json, "solver_p99_us", percentile_us(&samples_us, 0.99));
    push(&mut json, "solver_calls", solver_calls as f64);
    push(&mut json, "events_per_sec", events_per_sec);
    push(&mut json, "run_wall_ms", run_wall.as_secs_f64() * 1e3);
    json.push_str("}\n");

    std::fs::write(&args.out, &json).expect("snapshot file is writable");
    println!("wrote {}", args.out.display());
    bench_fast_path(&args.solver_out);
    println!(
        "{} epochs in {:.0} ms; epoch wall p50 {:.0} us, p99 {:.0} us; \
         solver p50 {:.1} us, p99 {:.1} us; {:.0} events/s",
        epochs,
        run_wall.as_secs_f64() * 1e3,
        wall_hist.p50 * 1e6,
        wall_hist.p99 * 1e6,
        percentile_us(&samples_us, 0.50),
        percentile_us(&samples_us, 0.99),
        events_per_sec
    );
}
