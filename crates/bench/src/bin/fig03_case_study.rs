//! Figure 3 — the §III-B case study: the impact of the power allocation
//! ratio (PAR) on EPU and performance for two heterogeneous servers
//! sharing a fixed 220 W green budget.
//!
//! Server A = dual-socket Xeon E5-2620 (idle 88 W, SPECjbb max ≈ 147 W);
//! Server B = Core i5-4460 (idle 47 W, SPECjbb max ≈ 81 W). The x-axis is
//! the percentage of the 220 W supply allocated to Server A; both series
//! are normalized to the uniform 50 % split, as in the paper.

use greenhetero_bench::{banner, bar, table_header, table_row};
use greenhetero_core::metrics::EpuAccumulator;
use greenhetero_core::types::{Ratio, Watts};
use greenhetero_server::rack::{Combination, Rack};
use greenhetero_server::workload::WorkloadKind;

fn main() {
    banner(
        "Figure 3",
        "EPU and normalized performance vs power allocation ratio (SPECjbb, 220 W)",
    );

    let rack = Rack::combination(Combination::Comb1, 1, WorkloadKind::SpecJbb)
        .expect("Comb1 runs SPECjbb");
    let budget = Watts::new(220.0);

    let evaluate = |par_percent: f64| -> (f64, f64) {
        let to_a = budget * Ratio::from_percent(par_percent);
        let to_b = budget - to_a;
        let m = rack.measure(&[to_a, to_b], Ratio::ONE);
        let mut epu = EpuAccumulator::new();
        epu.record(m.total_power().min(budget), budget);
        (epu.epu().value(), m.total_throughput().value())
    };

    let (_, perf_uniform) = evaluate(50.0);

    table_header(&["PAR (to Server A)", "EPU", "Perf (norm. to 50%)", ""]);
    let mut best = (0.0, 0.0);
    for step in 0..=20 {
        let par = f64::from(step) * 5.0;
        let (epu, perf) = evaluate(par);
        let norm = perf / perf_uniform;
        if norm > best.1 {
            best = (par, norm);
        }
        table_row(&[
            format!("{par:3.0}%"),
            format!("{epu:.3}"),
            format!("{norm:.3}x"),
            bar(norm, 1.6, 24),
        ]);
    }

    println!();
    println!(
        "optimal PAR ≈ {:.0}% with {:.2}x the uniform performance",
        best.0, best.1
    );
    println!("paper reports: optimum at 65% PAR, ≈1.5x gain, uniform EPU ≈ 0.86, EPU → 1.0 at the optimum");
}
