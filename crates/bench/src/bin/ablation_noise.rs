//! Ablation — profiling-noise sensitivity: how power-meter noise degrades
//! the database's fitted projections and, through them, the solver's
//! allocation quality.
//!
//! The controller never sees ground truth; it fits quadratics to noisy
//! (power, perf) samples. This sweep injects increasing gaussian meter
//! noise into a training run and reports (a) the fit's error at peak
//! power and (b) how much throughput the resulting allocation loses
//! against the true optimum.

use greenhetero_bench::{banner, table_header, table_row};
use greenhetero_core::database::{PerfDatabase, ProfileSample};
use greenhetero_core::solver::{solve, AllocationProblem, ServerGroup};
use greenhetero_core::types::{Ratio, SimTime, Throughput, Watts};
use greenhetero_power::meter::PowerMeter;
use greenhetero_server::rack::{Combination, Rack};
use greenhetero_server::workload::WorkloadKind;

fn main() {
    banner(
        "Ablation: profiling noise",
        "Database fit quality and allocation loss vs meter noise (SPECjbb, Comb1, 220 W)",
    );

    let rack = Rack::combination(Combination::Comb1, 1, WorkloadKind::SpecJbb)
        .expect("Comb1 runs SPECjbb");
    let budget = Watts::new(220.0);

    // Ground-truth optimum via fine manual search.
    let mut true_best = Throughput::ZERO;
    for step in 0..=200 {
        let to_a = budget * Ratio::saturating(f64::from(step) / 200.0);
        let thr = rack.measured_throughput(&[to_a, budget - to_a], Ratio::ONE);
        true_best = true_best.max(thr);
    }

    table_header(&[
        "Meter noise σ (W)",
        "fit error @peak (%)",
        "allocation loss vs optimum (%)",
    ]);

    for noise in [0.0, 0.5, 1.0, 2.0, 4.0, 8.0] {
        // Average over several seeds so the row is stable.
        let mut fit_errs = Vec::new();
        let mut losses = Vec::new();
        for seed in 0..8u64 {
            let mut meter = PowerMeter::new(Watts::new(noise), seed);
            let mut db = PerfDatabase::new();
            for (gi, group) in rack.groups().iter().enumerate() {
                let sweep = rack.training_sweep(gi, 5, Ratio::ONE);
                let samples: Vec<ProfileSample> = sweep
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        ProfileSample::new(
                            meter.read(s.power),
                            s.throughput,
                            SimTime::from_secs(i as u64 * 120),
                        )
                    })
                    .collect();
                db.insert_training(
                    group.platform.id(),
                    group.workload.id(),
                    group.server().truth().envelope(),
                    &samples,
                )
                .expect("training fits");
            }

            // Fit error at peak for the Xeon group.
            let xeon = &rack.groups()[0];
            let truth = xeon.server().truth();
            let model = db
                .model(xeon.platform.id(), xeon.workload.id())
                .expect("trained");
            let projected = model.eval(truth.envelope().peak()).value();
            let actual = truth.t_max().value();
            fit_errs.push(100.0 * (projected - actual).abs() / actual);

            // Allocation loss: solve on the fitted models, measure on truth.
            let groups: Vec<ServerGroup> = rack
                .groups()
                .iter()
                .map(|g| {
                    ServerGroup::new(
                        g.platform.id(),
                        g.count,
                        *db.model(g.platform.id(), g.workload.id()).expect("trained"),
                    )
                    .expect("valid group")
                })
                .collect();
            let problem = AllocationProblem::new(groups, budget).expect("valid problem");
            let alloc = solve(&problem).expect("solvable");
            let measured = rack.measured_throughput(&alloc.per_server, Ratio::ONE);
            losses.push(100.0 * (true_best.value() - measured.value()) / true_best.value());
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        table_row(&[
            format!("{noise:.1}"),
            format!("{:.2}", mean(&fit_errs)),
            format!("{:.2}", mean(&losses)),
        ]);
    }

    println!();
    println!("takeaway: the quadratic fit averages noise out well; allocation quality stays");
    println!("within a few percent of optimal until meter noise reaches several watts");
}
