//! Table I — the evaluation workload catalog.

use greenhetero_bench::{banner, table_header, table_row};
use greenhetero_server::workload::WorkloadKind;

fn main() {
    banner("Table I", "Workload description");
    table_header(&["Workload", "Suite", "Performance metric", "Interactive"]);
    for w in WorkloadKind::ALL {
        let s = w.spec();
        table_row(&[
            w.to_string(),
            s.suite.name().to_string(),
            s.metric.to_string(),
            if s.interactive { "yes" } else { "no" }.to_string(),
        ]);
    }
    println!();
    println!("behavioural calibration (reproduction-specific):");
    table_header(&[
        "Workload",
        "power factor",
        "kappa",
        "parallel scaling",
        "memory scaling",
        "GPU affinity",
    ]);
    for w in WorkloadKind::ALL {
        let s = w.spec();
        table_row(&[
            w.to_string(),
            format!("{:.2}", s.power_factor),
            format!("{:.2}", s.kappa),
            format!("{:.2}", s.parallel_scaling),
            format!("{:.2}", s.memory_scaling),
            format!("{:.1}", s.gpu_affinity),
        ]);
    }
}
