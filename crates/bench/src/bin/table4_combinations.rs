//! Table IV — the server combinations of the heterogeneity study.

use greenhetero_bench::{banner, table_header, table_row};
use greenhetero_server::rack::Combination;
use greenhetero_server::workload::WorkloadKind;

fn main() {
    banner("Table IV", "Server combinations");
    table_header(&["Combination", "Server types", "Workloads"]);
    for c in Combination::ALL {
        let platforms = c
            .platforms()
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join(", ");
        let workloads = if c == Combination::Comb6 {
            WorkloadKind::COMB6_SET
                .iter()
                .map(|w| w.name())
                .collect::<Vec<_>>()
                .join(", ")
        } else {
            "SPECjbb".to_string()
        };
        table_row(&[c.to_string(), platforms, workloads]);
    }
}
