//! Ablation — battery depth-of-discharge: the paper fixes DoD at 40 % "to
//! mitigate the impact on battery lifetime". This sweep quantifies the
//! trade-off: deeper discharge buys more green ride-through (less grid
//! energy and cost) but consumes rated cycles faster.

use greenhetero_bench::{banner, table_header, table_row};
use greenhetero_core::policies::PolicyKind;
use greenhetero_core::types::Ratio;
use greenhetero_power::battery::BatterySpec;
use greenhetero_sim::engine::run_scenario;
use greenhetero_sim::scenario::Scenario;

fn main() {
    banner(
        "Ablation: battery DoD",
        "Grid usage and battery lifetime vs depth-of-discharge (SPECjbb, High trace, 24 h)",
    );

    table_header(&[
        "DoD",
        "usable (kWh)",
        "grid energy (kWh)",
        "grid cost ($)",
        "cycles/day",
        "≈ lifetime at 1300 cycles (days)",
        "mean throughput",
    ]);

    for dod in [0.2, 0.3, 0.4, 0.5, 0.6, 0.8] {
        let battery = BatterySpec {
            dod_limit: Ratio::saturating(dod),
            recharge_target: Ratio::saturating(((1.0 - dod) + 0.3).min(0.95)),
            ..BatterySpec::paper_rack_bank()
        };
        let scenario = Scenario {
            battery,
            ..Scenario::paper_runtime(PolicyKind::GreenHetero)
        };
        let report = run_scenario(scenario).expect("simulation runs");
        let usable = 12.0 * dod;
        let lifetime_days = if report.battery_cycles > 0.0 {
            1300.0 / report.battery_cycles
        } else {
            f64::INFINITY
        };
        table_row(&[
            format!("{:.0}%", dod * 100.0),
            format!("{usable:.1}"),
            format!("{:.1}", report.grid_energy.as_kilowatt_hours()),
            format!("{:.2}", report.grid_cost),
            format!("{:.2}", report.battery_cycles),
            if lifetime_days.is_finite() {
                format!("{lifetime_days:.0}")
            } else {
                "∞".to_string()
            },
            format!("{:.0}", report.mean_throughput().value()),
        ]);
    }

    println!();
    println!("the paper's 40% DoD sits at the knee: enough night ride-through to keep grid");
    println!("cost low, while cycle wear stays ≈2/day (≈21 months of rated lifetime)");
}
