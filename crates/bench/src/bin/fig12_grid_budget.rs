//! Figure 12 — performance under different grid power budgets once the
//! batteries drain out.
//!
//! Paper shape: GreenHetero's advantage over Uniform shrinks as the grid
//! budget grows (with ample grid power everyone reaches peak), but
//! under-provisioned budgets are exactly where heterogeneity-awareness
//! pays — and peak grid power is expensive (up to $13.61/kW), so
//! GreenHetero lets operators under-provision the grid infrastructure.

use greenhetero_bench::{banner, table_header, table_row};
use greenhetero_core::policies::PolicyKind;
use greenhetero_core::types::Watts;
use greenhetero_sim::report::RunReport;
use greenhetero_sim::runner::compare_policies;
use greenhetero_sim::scenario::Scenario;

fn main() {
    banner(
        "Figure 12",
        "Performance of different grid power budgets (SPECjbb, batteries drained at night)",
    );

    table_header(&[
        "Grid budget (W)",
        "Uniform",
        "GreenHetero",
        "Gain",
        "GreenHetero grid cost ($)",
    ]);

    // Scarcity bites at night, when the battery hits its DoD floor and the
    // grid budget is all there is — precisely the Fig. 12 condition.
    let night = |r: &RunReport| {
        r.mean_throughput_where(|e| e.solar.value() < 5.0 && e.battery_discharge.value() == 0.0)
    };

    for budget in [400.0, 600.0, 800.0, 1000.0, 1200.0, 1400.0] {
        let base = Scenario {
            grid_budget: Watts::new(budget),
            ..Scenario::paper_runtime(PolicyKind::Uniform)
        };
        let outcomes = compare_policies(&base, &[PolicyKind::Uniform, PolicyKind::GreenHetero])
            .expect("simulations run");
        let uni = night(&outcomes[0].report).value();
        let gh = night(&outcomes[1].report).value();
        let gain = if uni > 0.0 { gh / uni } else { f64::INFINITY };
        table_row(&[
            format!("{budget:.0}"),
            format!("{uni:.0}"),
            format!("{gh:.0}"),
            format!("{gain:.2}x"),
            format!("{:.2}", outcomes[1].report.grid_cost),
        ]);
    }

    println!();
    println!("paper reports: the GreenHetero-vs-Uniform gain shrinks as the grid budget grows;");
    println!(
        "under-provisioned grid budgets are where heterogeneity-aware allocation matters most"
    );
}
