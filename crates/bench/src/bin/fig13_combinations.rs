//! Figure 13 — SPECjbb performance across the server combinations of
//! Table IV (Comb1–Comb5), five policies, normalized to Uniform.
//!
//! Paper shape: Comb2 and Comb4 behave near-homogeneously (only ≈ 3 %
//! improvement — their members have similar power profiles); Comb1 and
//! Comb3 show up to 1.5× gains; the three-type Comb5 reaches ≈ 1.6×.

use greenhetero_bench::{banner, policy_order, table_header, table_row};
use greenhetero_core::policies::PolicyKind;
use greenhetero_server::rack::Combination;
use greenhetero_server::workload::WorkloadKind;
use greenhetero_sim::runner::compare_policies;
use greenhetero_sim::scenario::Scenario;

fn main() {
    banner(
        "Figure 13",
        "Performance of different server combinations (SPECjbb, normalized to Uniform)",
    );

    let policies = policy_order();
    let mut header: Vec<&str> = vec!["Combination", "Platforms"];
    let names: Vec<&str> = policies.iter().map(|p| p.name()).collect();
    header.extend(&names);
    table_header(&header);

    for comb in [
        Combination::Comb1,
        Combination::Comb2,
        Combination::Comb3,
        Combination::Comb4,
        Combination::Comb5,
    ] {
        let base = Scenario {
            combination: comb,
            ..Scenario::workload_study(WorkloadKind::SpecJbb, PolicyKind::Uniform)
        };
        let outcomes = compare_policies(&base, &policies).expect("simulations run");
        let baseline = outcomes[0].report.mean_scarce_throughput().value();
        assert!(
            baseline > 0.0,
            "Uniform baseline produced zero scarce throughput for {comb}; cannot normalize"
        );
        let mut cells = vec![
            comb.to_string(),
            comb.platforms()
                .iter()
                .map(|p| p.name())
                .collect::<Vec<_>>()
                .join(" + "),
        ];
        for o in &outcomes {
            cells.push(format!(
                "{:.2}x",
                o.report.mean_scarce_throughput().value() / baseline
            ));
        }
        table_row(&cells);
    }

    println!();
    println!("paper reports: Comb2/Comb4 ≈ +3% (near-homogeneous power profiles),");
    println!("Comb1/Comb3 up to 1.5x, Comb5 (three types) ≈ 1.6x");
}
