//! Table III — the five power-allocation policies.

use greenhetero_bench::{banner, table_header, table_row};
use greenhetero_core::policies::PolicyKind;

fn main() {
    banner("Table III", "Power allocation policies");
    table_header(&["Policy", "Description", "Updates database"]);
    for p in PolicyKind::ALL {
        table_row(&[
            p.name().to_string(),
            p.description().to_string(),
            if p.build().updates_database() {
                "yes"
            } else {
                "no"
            }
            .to_string(),
        ]);
    }
}
