//! Phase 1 of the two-phase analysis: the cross-file symbol graph.
//!
//! The per-file rules (GH001–GH006) only ever need one [`FileModel`] at a
//! time. The determinism rules (GH007–GH010) need facts that live in a
//! *different* file than the violation: a `HashMap` field declared in
//! `store.rs` is iterated from an `impl` block that may sit anywhere, a
//! metric-name literal must match the catalog in `telemetry/mod.rs`, and
//! a catalog constant is dead only if *no* file uses it. This module
//! walks every model once and builds the shared lookup tables those
//! rules run against.
//!
//! Everything here iterates in sorted (`BTreeMap`/`BTreeSet`) or source
//! order — the graph is itself subject to the determinism discipline it
//! helps enforce: two runs over the same tree must report identically.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Token, TokenKind};
use crate::model::{matching_brace, FileModel};

/// Container types whose iteration order is seeded per-process
/// (`RandomState`) and therefore banned from reduction/telemetry paths
/// by GH007.
pub const UNORDERED_CONTAINERS: &[&str] = &["HashMap", "HashSet"];

/// Newtypes whose constructors clamp their input into a fixed range.
/// Accumulating *through* one of these (the GH008 ban) silently
/// saturates partial sums — the PR 5 fleet-SoC bug. `Ratio` (which also
/// carries battery SoC) clamps to `[0, 1]`.
pub const CLAMPING_NEWTYPES: &[&str] = &["Ratio"];

/// One struct field and what the graph knows about its declared type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldInfo {
    /// Base identifier of the declared type (last path segment before
    /// any generics): `std::collections::HashMap<K, V>` → `HashMap`.
    pub type_base: String,
    /// `true` when any [`UNORDERED_CONTAINERS`] identifier appears
    /// anywhere in the field's type (so `Arc<HashMap<..>>` counts).
    pub unordered: bool,
    /// `true` when the field's type is exactly one of the
    /// [`CLAMPING_NEWTYPES`].
    pub clamping: bool,
    /// File the field is declared in.
    pub file: String,
    /// 1-based declaration line.
    pub line: u32,
}

/// One `pub const NAME: &str = "metric_name";` inside a `mod names`
/// catalog block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogConst {
    /// The constant's identifier (`SOLVER_CACHE_HIT`).
    pub const_name: String,
    /// The metric name it holds (`greenhetero_solver_cache_hit_total`).
    pub metric: String,
    /// File the catalog block lives in.
    pub file: String,
    /// 1-based declaration line.
    pub line: u32,
}

/// One `.counter("…")` / `.gauge("…")` / `.histogram("…")` call whose
/// name argument is a string literal rather than a catalog constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricLiteral {
    /// The literal metric name (quotes stripped).
    pub metric: String,
    /// Which instrument method it was passed to.
    pub method: String,
    /// File of the call site.
    pub file: String,
    /// 1-based line of the call site.
    pub line: u32,
}

/// One `pub` item definition (unrestricted visibility).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PubItem {
    /// Item keyword: `fn`, `struct`, `enum`, `trait`, `const`, `static`,
    /// `type`, or `mod`.
    pub kind: String,
    /// The item's name.
    pub name: String,
    /// File the item is declared in.
    pub file: String,
    /// 1-based declaration line.
    pub line: u32,
}

/// The cross-file symbol graph the GH007–GH010 rules run against.
#[derive(Debug, Default)]
pub struct SymbolGraph {
    /// Struct name → field name → declared-type facts.
    pub struct_fields: BTreeMap<String, BTreeMap<String, FieldInfo>>,
    /// Field name → every [`FieldInfo`] declared under that name, for
    /// receiver chains the impl-target walk cannot resolve exactly.
    pub fields_by_name: BTreeMap<String, Vec<FieldInfo>>,
    /// File path → local binding name → base type it resolved to
    /// (`HashMap`, `HashSet`, `Ratio`, …) via a `let` annotation or a
    /// `Type::constructor(...)` initializer.
    pub locals: BTreeMap<String, BTreeMap<String, String>>,
    /// Every catalog constant, in catalog source order.
    pub catalog: Vec<CatalogConst>,
    /// The set of metric-name strings the catalog holds.
    pub catalog_values: BTreeSet<String>,
    /// Catalog constant name → number of live uses (a `names::CONST`
    /// path outside the catalog block, or a string literal equal to the
    /// constant's value anywhere in the tree).
    pub catalog_uses: BTreeMap<String, u32>,
    /// Non-test instrument registrations/lookups that pass a string
    /// literal instead of a catalog constant.
    pub metric_literals: Vec<MetricLiteral>,
    /// Every unrestricted-`pub` item definition in the scanned set.
    pub pub_items: Vec<PubItem>,
}

impl SymbolGraph {
    /// Walks every model once and builds the graph.
    #[must_use]
    pub fn build(models: &[FileModel]) -> Self {
        let mut graph = SymbolGraph::default();
        // Catalog blocks first: literal-equality use counting needs the
        // value set before the use scan.
        for model in models {
            collect_catalog(model, &mut graph);
        }
        for model in models {
            collect_struct_fields(model, &mut graph);
            collect_locals(model, &mut graph);
            collect_metric_calls(model, &mut graph);
            collect_catalog_uses(model, &mut graph);
            collect_pub_items(model, &mut graph);
        }
        for fields in graph.struct_fields.values() {
            for (name, info) in fields {
                graph
                    .fields_by_name
                    .entry(name.clone())
                    .or_default()
                    .push(info.clone());
            }
        }
        graph
    }

    /// Resolves a receiver chain (`["self", "entries"]`, `["seen"]`, …)
    /// ending at token index `at` in `model` to the base type the graph
    /// knows for it, if any.
    ///
    /// Resolution order: `self.field` through the innermost `impl`
    /// block's target struct; a bare identifier through the file's local
    /// bindings; any remaining trailing field name through the
    /// name-indexed field table (an over-approximation, acceptable for a
    /// lint with a per-site escape hatch).
    #[must_use]
    pub fn resolve_chain(&self, model: &FileModel, chain: &[String], at: usize) -> Option<String> {
        match chain {
            [] => None,
            [single] if single == "self" => None,
            [single] => self
                .locals
                .get(&model.path)
                .and_then(|locals| locals.get(single))
                .cloned(),
            [head, field] if head == "self" => {
                if let Some(target) = model.impl_at(at).map(|b| b.target.clone()) {
                    if let Some(info) = self
                        .struct_fields
                        .get(&target)
                        .and_then(|fields| fields.get(field))
                    {
                        return Some(info.type_base.clone());
                    }
                }
                self.field_type_by_name(field)
            }
            [.., last] => self.field_type_by_name(last),
        }
    }

    /// `true` when `type_base` (or the field's full type) names an
    /// unordered container.
    #[must_use]
    pub fn is_unordered_type(type_base: &str) -> bool {
        UNORDERED_CONTAINERS.contains(&type_base)
    }

    /// The single type every field called `name` is declared with, if
    /// they all agree; `None` when the name is unknown or ambiguous.
    fn field_type_by_name(&self, name: &str) -> Option<String> {
        let infos = self.fields_by_name.get(name)?;
        let first = &infos[0].type_base;
        infos
            .iter()
            .all(|i| &i.type_base == first)
            .then(|| first.clone())
    }
}

/// Reads a type starting at `start` (exclusive of the leading `:`),
/// stopping at `,`/`;`/`=`/`)`/`}` at nesting level zero. Returns the
/// base identifier (last path segment before generics), whether any
/// unordered-container identifier appears anywhere inside, and the index
/// just past the type.
fn read_field_type(tokens: &[Token], start: usize) -> (Option<String>, bool, usize) {
    let mut base: Option<String> = None;
    let mut unordered = false;
    let mut nest = 0i64;
    let mut i = start;
    let mut prev_was_path_sep = false;
    while i < tokens.len() {
        let t = &tokens[i];
        match t.text.as_str() {
            "<" | "(" | "[" => nest += 1,
            ">" | ")" | "]" => {
                if nest == 0 {
                    break;
                }
                nest -= 1;
            }
            "," | ";" | "=" | "}" if nest == 0 => break,
            _ => {}
        }
        if t.kind == TokenKind::Ident {
            if UNORDERED_CONTAINERS.contains(&t.text.as_str()) {
                unordered = true;
            }
            // The base is the last path segment read at nesting zero:
            // `std::collections::HashMap<K, V>` keeps updating the base
            // until `<` bumps the nest.
            if nest == 0
                && !matches!(t.text.as_str(), "dyn" | "mut" | "pub" | "crate")
                && (prev_was_path_sep || base.is_none() || tokens[i - 1].text == ":")
            {
                base = Some(t.text.clone());
            }
        }
        prev_was_path_sep = t.text == ":";
        i += 1;
    }
    (base, unordered, i)
}

/// Collects named-struct field declarations into the graph.
fn collect_struct_fields(model: &FileModel, graph: &mut SymbolGraph) {
    let tokens = &model.tokens;
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].kind != TokenKind::Ident || tokens[i].text != "struct" {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let struct_name = name_tok.text.clone();
        // Skip generics, find `{` (named fields) or bail on `;`/`(`.
        let mut j = i + 2;
        if tokens.get(j).map(|t| t.text.as_str()) == Some("<") {
            let mut depth = 0i64;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        while j < tokens.len() && !matches!(tokens[j].text.as_str(), "{" | ";" | "(") {
            j += 1;
        }
        if tokens.get(j).map(|t| t.text.as_str()) != Some("{") {
            i = j.max(i + 1);
            continue;
        }
        let close = matching_brace(tokens, j);
        let mut k = j + 1;
        while k < close {
            // Skip attributes and visibility before the field name.
            match tokens[k].text.as_str() {
                "#" => {
                    // `#[...]` — jump past the bracket group.
                    if tokens.get(k + 1).map(|t| t.text.as_str()) == Some("[") {
                        let mut depth = 0i64;
                        let mut m = k + 1;
                        while m < close {
                            match tokens[m].text.as_str() {
                                "[" => depth += 1,
                                "]" => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            m += 1;
                        }
                        k = m + 1;
                        continue;
                    }
                    k += 1;
                    continue;
                }
                "pub" => {
                    k += 1;
                    if tokens.get(k).map(|t| t.text.as_str()) == Some("(") {
                        // Visibility restriction `(crate)` / `(super)`.
                        while k < close && tokens[k].text != ")" {
                            k += 1;
                        }
                        k += 1;
                    }
                    continue;
                }
                _ => {}
            }
            let (Some(field_tok), Some(colon)) = (tokens.get(k), tokens.get(k + 1)) else {
                break;
            };
            if field_tok.kind != TokenKind::Ident || colon.text != ":" {
                k += 1;
                continue;
            }
            let (base, unordered, after) = read_field_type(tokens, k + 2);
            if let Some(type_base) = base {
                let info = FieldInfo {
                    unordered: unordered || SymbolGraph::is_unordered_type(&type_base),
                    clamping: CLAMPING_NEWTYPES.contains(&type_base.as_str()),
                    type_base,
                    file: model.path.clone(),
                    line: field_tok.line,
                };
                graph
                    .struct_fields
                    .entry(struct_name.clone())
                    .or_default()
                    .insert(field_tok.text.clone(), info);
            }
            // Move past the trailing `,` if present.
            k = after;
            if tokens.get(k).map(|t| t.text.as_str()) == Some(",") {
                k += 1;
            }
        }
        i = close + 1;
    }
}

/// Collects `let` bindings and `fn` parameters whose type the graph can
/// pin down: an explicit annotation, or a `Type::constructor(...)`
/// initializer.
fn collect_locals(model: &FileModel, graph: &mut SymbolGraph) {
    let tokens = &model.tokens;
    let interesting: Vec<&str> = UNORDERED_CONTAINERS
        .iter()
        .chain(CLAMPING_NEWTYPES)
        .copied()
        .collect();
    // Function parameters: `name: Type` pairs at paren-nesting zero of
    // each signature's parameter list.
    for sig in crate::rules::find_fns(model) {
        let mut k = sig.params.start;
        let mut nest = 0i64;
        while k < sig.params.end {
            match tokens[k].text.as_str() {
                "(" | "[" | "<" => nest += 1,
                ")" | "]" | ">" => nest -= 1,
                _ => {}
            }
            if nest == 0
                && tokens[k].kind == TokenKind::Ident
                && tokens[k].text != "mut"
                && tokens.get(k + 1).map(|t| t.text.as_str()) == Some(":")
                && tokens.get(k + 2).map(|t| t.text.as_str()) != Some(":")
            {
                let (base, unordered, after) = read_field_type(tokens, k + 2);
                if let Some(base) = base.filter(|b| interesting.contains(&b.as_str())) {
                    graph
                        .locals
                        .entry(model.path.clone())
                        .or_default()
                        .insert(tokens[k].text.clone(), base);
                } else if unordered {
                    graph
                        .locals
                        .entry(model.path.clone())
                        .or_default()
                        .insert(tokens[k].text.clone(), "HashMap".to_string());
                }
                k = after;
                continue;
            }
            k += 1;
        }
    }
    for i in 0..tokens.len() {
        if tokens[i].kind != TokenKind::Ident || tokens[i].text != "let" {
            continue;
        }
        let mut j = i + 1;
        if tokens.get(j).map(|t| t.text.as_str()) == Some("mut") {
            j += 1;
        }
        let Some(name_tok) = tokens.get(j) else {
            continue;
        };
        if name_tok.kind != TokenKind::Ident {
            continue; // destructuring pattern — out of scope
        }
        let name = name_tok.text.clone();
        let resolved = match tokens.get(j + 1).map(|t| t.text.as_str()) {
            Some(":") => {
                let (base, unordered, _) = read_field_type(tokens, j + 2);
                base.filter(|b| interesting.contains(&b.as_str()))
                    .or_else(|| unordered.then(|| "HashMap".to_string()))
            }
            Some("=") => {
                // `let x = HashMap::new()` / `let r = Ratio::saturating(…)`.
                let first = tokens.get(j + 2);
                let is_path = tokens.get(j + 3).map(|t| t.text.as_str()) == Some(":")
                    && tokens.get(j + 4).map(|t| t.text.as_str()) == Some(":");
                first
                    .filter(|t| t.kind == TokenKind::Ident && is_path)
                    .map(|t| t.text.clone())
                    .filter(|b| interesting.contains(&b.as_str()))
            }
            _ => None,
        };
        if let Some(type_base) = resolved {
            graph
                .locals
                .entry(model.path.clone())
                .or_default()
                .insert(name, type_base);
        }
    }
}

/// Inclusive token spans of `mod names { … }` blocks in one file.
fn names_block_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].kind == TokenKind::Ident
            && tokens[i].text == "mod"
            && tokens.get(i + 1).map(|t| t.text.as_str()) == Some("names")
            && tokens.get(i + 2).map(|t| t.text.as_str()) == Some("{")
        {
            spans.push((i, matching_brace(tokens, i + 2)));
        }
    }
    spans
}

/// Collects `pub const NAME: &str = "…";` declarations inside `mod
/// names { … }` catalog blocks.
fn collect_catalog(model: &FileModel, graph: &mut SymbolGraph) {
    let tokens = &model.tokens;
    for (open, close) in names_block_spans(tokens) {
        let mut i = open;
        while i < close {
            if tokens[i].kind == TokenKind::Ident && tokens[i].text == "const" {
                let name = tokens.get(i + 1).filter(|t| t.kind == TokenKind::Ident);
                // Find the `=` then the string literal after it.
                let mut j = i + 2;
                while j < close && tokens[j].text != "=" && tokens[j].text != ";" {
                    j += 1;
                }
                let value = tokens
                    .get(j + 1)
                    .filter(|t| t.kind == TokenKind::Literal && t.text.starts_with('"'));
                if let (Some(name), Some(value)) = (name, value) {
                    let metric = value.text.trim_matches('"').to_string();
                    graph.catalog_values.insert(metric.clone());
                    graph.catalog_uses.entry(name.text.clone()).or_insert(0);
                    graph.catalog.push(CatalogConst {
                        const_name: name.text.clone(),
                        metric,
                        file: model.path.clone(),
                        line: name.line,
                    });
                }
            }
            i += 1;
        }
    }
}

/// Counts live uses of catalog constants: `names::CONST` paths outside
/// any catalog block, plus string literals equal to a catalog value.
fn collect_catalog_uses(model: &FileModel, graph: &mut SymbolGraph) {
    let tokens = &model.tokens;
    let spans = names_block_spans(tokens);
    let in_catalog = |idx: usize| spans.iter().any(|&(lo, hi)| (lo..=hi).contains(&idx));
    // Metric → const names holding that value (values are unique in a
    // healthy catalog, but drift is exactly what we're looking for).
    let by_value: BTreeMap<&str, Vec<&str>> =
        graph.catalog.iter().fold(BTreeMap::new(), |mut m, c| {
            m.entry(c.metric.as_str()).or_default().push(&c.const_name);
            m
        });
    let mut bump: Vec<String> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind == TokenKind::Ident
            && t.text == "names"
            && !in_catalog(i)
            && tokens.get(i + 1).map(|n| n.text.as_str()) == Some(":")
            && tokens.get(i + 2).map(|n| n.text.as_str()) == Some(":")
        {
            if let Some(konst) = tokens.get(i + 3).filter(|n| n.kind == TokenKind::Ident) {
                bump.push(konst.text.clone());
            }
        }
        // A literal equal to a catalog value is a live use — except the
        // declaration literal inside the catalog block itself.
        if t.kind == TokenKind::Literal && t.text.starts_with('"') && !in_catalog(i) {
            if let Some(consts) = by_value.get(t.text.trim_matches('"')) {
                bump.extend(consts.iter().map(|c| (*c).to_string()));
            }
        }
    }
    for konst in bump {
        if let Some(count) = graph.catalog_uses.get_mut(&konst) {
            *count += 1;
        }
    }
}

/// Collects non-test `.counter("…")` / `.gauge("…")` / `.histogram("…")`
/// calls whose name argument is a direct string literal.
fn collect_metric_calls(model: &FileModel, graph: &mut SymbolGraph) {
    let tokens = &model.tokens;
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident
            || !matches!(t.text.as_str(), "counter" | "gauge" | "histogram")
        {
            continue;
        }
        let is_method = i > 0 && tokens[i - 1].text == ".";
        if !is_method
            || tokens.get(i + 1).map(|n| n.text.as_str()) != Some("(")
            || model.in_test_code(t.line)
        {
            continue;
        }
        if let Some(lit) = tokens
            .get(i + 2)
            .filter(|n| n.kind == TokenKind::Literal && n.text.starts_with('"'))
        {
            graph.metric_literals.push(MetricLiteral {
                metric: lit.text.trim_matches('"').to_string(),
                method: t.text.clone(),
                file: model.path.clone(),
                line: lit.line,
            });
        }
    }
}

/// Collects unrestricted-`pub` item definitions.
fn collect_pub_items(model: &FileModel, graph: &mut SymbolGraph) {
    let tokens = &model.tokens;
    for i in 0..tokens.len() {
        if tokens[i].kind != TokenKind::Ident || tokens[i].text != "pub" {
            continue;
        }
        if tokens.get(i + 1).map(|t| t.text.as_str()) == Some("(") {
            continue; // restricted visibility
        }
        // Walk over modifiers (`const fn`, `unsafe trait`, `async fn`).
        let mut j = i + 1;
        while j < tokens.len()
            && matches!(
                tokens[j].text.as_str(),
                "const" | "async" | "unsafe" | "extern" | "static"
            )
        {
            // `pub const NAME` (a constant, not `pub const fn`): when the
            // token after `const`/`static` is not another keyword, the
            // modifier *is* the item kind.
            if matches!(tokens[j].text.as_str(), "const" | "static")
                && tokens.get(j + 1).is_some_and(|t| {
                    t.kind == TokenKind::Ident
                        && !matches!(t.text.as_str(), "fn" | "unsafe" | "extern")
                })
            {
                break;
            }
            j += 1;
        }
        let Some(kind_tok) = tokens.get(j) else {
            continue;
        };
        let kind = kind_tok.text.as_str();
        if !matches!(
            kind,
            "fn" | "struct" | "enum" | "trait" | "const" | "static" | "type" | "mod" | "use"
        ) || kind == "use"
        {
            continue;
        }
        if let Some(name_tok) = tokens.get(j + 1).filter(|t| t.kind == TokenKind::Ident) {
            graph.pub_items.push(PubItem {
                kind: kind.to_string(),
                name: name_tok.text.clone(),
                file: model.path.clone(),
                line: tokens[i].line,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(sources: &[(&str, &str)]) -> SymbolGraph {
        let models: Vec<FileModel> = sources
            .iter()
            .map(|(p, s)| FileModel::build(p, s))
            .collect();
        SymbolGraph::build(&models)
    }

    #[test]
    fn struct_fields_record_unordered_and_clamping_types() {
        let g = build(&[(
            "crates/core/src/db.rs",
            "pub struct Store {\n    entries: std::collections::HashMap<u32, f64>,\n    cache: Arc<HashSet<u64>>,\n    soc: Ratio,\n    names: Vec<String>,\n}\n",
        )]);
        let fields = &g.struct_fields["Store"];
        assert!(fields["entries"].unordered);
        assert!(fields["cache"].unordered, "wrapped HashSet still counts");
        assert!(fields["soc"].clamping);
        assert!(!fields["names"].unordered);
        assert_eq!(fields["entries"].type_base, "HashMap");
    }

    #[test]
    fn chains_resolve_through_impl_targets_and_locals() {
        let src = "pub struct Store { entries: HashMap<u32, f64> }\n\
                   impl Store {\n  fn f(&self) -> usize { self.entries.len() }\n}\n\
                   fn g() { let seen: HashSet<u32> = HashSet::new(); let n = seen.len(); }\n";
        let model = FileModel::build("crates/core/src/db.rs", src);
        let g = SymbolGraph::build(&[FileModel::build("crates/core/src/db.rs", src)]);
        // `self.entries` inside the impl block (find a token index inside it).
        let idx = model
            .tokens
            .iter()
            .position(|t| t.text == "len")
            .expect("len token");
        let base = g.resolve_chain(&model, &["self".into(), "entries".into()], idx);
        assert_eq!(base.as_deref(), Some("HashMap"));
        let base = g.resolve_chain(&model, &["seen".into()], idx);
        assert_eq!(base.as_deref(), Some("HashSet"));
        assert_eq!(g.resolve_chain(&model, &["unknown".into()], idx), None);
    }

    #[test]
    fn catalog_consts_and_uses_are_counted() {
        let g = build(&[
            (
                "crates/core/src/telemetry/mod.rs",
                "pub mod names {\n    /// Doc.\n    pub const USED: &str = \"gh_used_total\";\n    pub const ORPHAN: &str = \"gh_orphan_total\";\n}\n",
            ),
            (
                "crates/sim/src/engine.rs",
                "fn wire(r: &Registry) { r.counter(names::USED); r.gauge(\"gh_rogue_watts\"); }\n",
            ),
        ]);
        assert_eq!(g.catalog.len(), 2);
        assert_eq!(g.catalog_uses["USED"], 1);
        assert_eq!(g.catalog_uses["ORPHAN"], 0);
        assert_eq!(g.metric_literals.len(), 1);
        assert_eq!(g.metric_literals[0].metric, "gh_rogue_watts");
    }

    #[test]
    fn literal_equal_to_catalog_value_counts_as_a_use() {
        let g = build(&[
            (
                "crates/core/src/telemetry/mod.rs",
                "pub mod names { pub const A: &str = \"gh_a_total\"; }\n",
            ),
            (
                "crates/sim/tests/t.rs",
                "fn f(l: &Ledger) { l.counter(\"gh_a_total\"); }\n",
            ),
        ]);
        assert_eq!(g.catalog_uses["A"], 1);
    }

    #[test]
    fn test_code_metric_literals_are_not_recorded() {
        let g = build(&[(
            "crates/core/src/telemetry/registry.rs",
            "#[cfg(test)]\nmod tests {\n    fn f(r: &Registry) { r.counter(\"x\"); }\n}\n",
        )]);
        assert!(g.metric_literals.is_empty());
    }

    #[test]
    fn pub_items_are_collected() {
        let g = build(&[(
            "crates/core/src/x.rs",
            "pub struct A;\npub fn f() {}\npub const C: u32 = 1;\npub(crate) fn hidden() {}\n",
        )]);
        let kinds: Vec<(&str, &str)> = g
            .pub_items
            .iter()
            .map(|p| (p.kind.as_str(), p.name.as_str()))
            .collect();
        assert!(kinds.contains(&("struct", "A")));
        assert!(kinds.contains(&("fn", "f")));
        assert!(kinds.contains(&("const", "C")));
        assert!(!kinds.iter().any(|(_, n)| *n == "hidden"));
    }
}
