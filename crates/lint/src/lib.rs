//! `greenhetero-lint`: workspace-aware domain lints for the GreenHetero
//! codebase.
//!
//! The general-purpose toolchain (rustc, clippy) cannot know that `Watts`
//! times `SimDuration` must be `WattHours`, or that every `CoreError`
//! variant needs a live construction site. This crate encodes those
//! project-specific rules as a standalone static-analysis pass:
//!
//! | rule  | meaning |
//! |-------|---------|
//! | GH000 | `greenhetero-lint: allow(...)` directive without a reason |
//! | GH001 | no `unwrap`/`expect`/`panic!`/`unreachable!` in library code |
//! | GH002 | no bare `f64`/`f32` in pub APIs of the dimensional crates |
//! | GH003 | cross-newtype arithmetic must be in the sanctioned table |
//! | GH004 | every `*Error` variant constructed outside its definition |
//! | GH005 | doc comments on all pub items of the library crates |
//! | GH006 | no per-solve heap allocation in the solver hot-loop modules |
//! | GH007 | no `HashMap`/`HashSet` iteration in reduction/telemetry paths |
//! | GH008 | no accumulation (`+=`/`fold`/`sum`) through clamping newtypes |
//! | GH009 | metric-name literals ↔ `telemetry::names` catalog coherence |
//! | GH010 | no ambient nondeterminism outside `Timing`-tagged modules |
//! | GH011 | no unbounded channels in backpressure-scoped modules |
//! | GH012 | no direct thread spawning outside the scheduler allowlist |
//!
//! The analysis runs in two phases. Phase 1 scans every file into a
//! [`model::FileModel`] and builds the cross-file [`graph::SymbolGraph`]
//! (struct fields and their types, catalog constants and their uses,
//! metric-name literals, pub items). Phase 2 runs the per-file rules
//! (GH001–GH003, GH005, GH006, GH011, GH012), the cross-file rules (GH004,
//! GH009), and the graph-resolved determinism rules (GH007, GH008,
//! GH010) — the last group scoped by the [`DETERMINISM_DOMAINS`] table
//! below.
//!
//! The front end is a hand-rolled lexer plus token-level structural
//! model — the offline build environment has no `syn`/`proc-macro2`, and
//! the rules here only need comment/string-aware token streams with
//! brace matching, not full parse trees.
//!
//! Violations can be suppressed per-site with a justified escape hatch on
//! the same or preceding line: `// greenhetero-lint: allow(GH001) <reason>`.
//! Every justified directive is tallied in the [`diag::Report`]
//! suppression census so escape hatches stay visible in CI artifacts.

pub mod diag;
pub mod dimensions;
pub mod graph;
pub mod lexer;
pub mod model;
pub mod rules;

use std::fs;
use std::io;
use std::path::Path;

use diag::{Diagnostic, Report, SuppressionRecord, SuppressionSite};
use graph::SymbolGraph;
use model::FileModel;

/// Every rule code with a one-line description, in code order — the
/// source of truth for `--list-rules` and `--rule` validation.
pub const RULES: &[(&str, &str)] = &[
    ("GH000", "allow directive without a reason"),
    (
        "GH001",
        "no unwrap/expect/panic!/unreachable! in library code",
    ),
    ("GH002", "no bare f64/f32 in pub APIs of dimensional crates"),
    ("GH003", "cross-newtype arithmetic must be sanctioned"),
    ("GH004", "every *Error variant constructed somewhere"),
    ("GH005", "doc comments on all pub items of library crates"),
    ("GH006", "no per-solve heap allocation in solver hot loops"),
    (
        "GH007",
        "no HashMap/HashSet iteration in reduction/telemetry paths",
    ),
    (
        "GH008",
        "no accumulation (+=/fold/sum) through clamping newtypes",
    ),
    (
        "GH009",
        "metric-name literals coherent with the telemetry::names catalog",
    ),
    (
        "GH010",
        "no ambient nondeterminism outside Timing-tagged modules",
    ),
    (
        "GH011",
        "no unbounded channels in backpressure-scoped modules",
    ),
    (
        "GH012",
        "no direct thread spawning outside the scheduler allowlist",
    ),
];

/// A determinism domain a module can be tagged with.
///
/// Tags drive rule scoping: GH007 runs inside `Reduction`/`Telemetry`
/// files, and GH010 exempts `Timing` files (where reading the wall clock
/// is the point — phase-duration histograms measure it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Folds per-rack/per-epoch data into run results (CSV, ledgers,
    /// fleet summaries) — iteration order is observable in outputs.
    Reduction,
    /// Registers or exports metrics — name sets and merge order are
    /// observable in ledgers and Prometheus dumps.
    Telemetry,
    /// Measures wall time as telemetry — the one sanctioned consumer of
    /// ambient clocks.
    Timing,
}

/// The declarative path → domain-tag table.
///
/// An entry matches any file whose workspace-relative path starts with
/// its prefix (so `…/database/` tags the whole module tree); a file
/// accumulates the tags of every matching entry. Documented in DESIGN.md
/// §8 alongside the rules that consume each tag.
pub const DETERMINISM_DOMAINS: &[(&str, &[Domain])] = &[
    ("crates/core/src/database/", &[Domain::Reduction]),
    ("crates/core/src/metrics.rs", &[Domain::Reduction]),
    ("crates/core/src/telemetry/", &[Domain::Telemetry]),
    ("crates/core/src/controller.rs", &[Domain::Timing]),
    ("crates/power/src/gauges.rs", &[Domain::Telemetry]),
    ("crates/sim/src/fleet.rs", &[Domain::Reduction]),
    (
        "crates/sim/src/report.rs",
        &[Domain::Reduction, Domain::Telemetry],
    ),
    (
        "crates/sim/src/engine.rs",
        &[Domain::Reduction, Domain::Timing],
    ),
    (
        "crates/sim/src/runner.rs",
        &[Domain::Reduction, Domain::Timing],
    ),
    // The work-stealing pool's parking machinery (condvar timeouts,
    // park deadlines) is wall-clock by nature, like the serve daemon's
    // heartbeats below — timing there is infrastructure, never an input
    // to any decision stream.
    ("crates/sim/src/sched.rs", &[Domain::Timing]),
    // The serve daemon measures wall time on purpose: heartbeats,
    // backoff, and drain deadlines are real-time contracts, not
    // simulated quantities.
    ("crates/serve/src/", &[Domain::Timing]),
];

/// The union of domain tags matching `path` in [`DETERMINISM_DOMAINS`].
#[must_use]
pub fn domains_for(path: &str) -> Vec<Domain> {
    let mut tags = Vec::new();
    for (prefix, domains) in DETERMINISM_DOMAINS {
        if path.starts_with(prefix) {
            for d in *domains {
                if !tags.contains(d) {
                    tags.push(*d);
                }
            }
        }
    }
    tags
}

/// Directory names never descended into when scanning a workspace.
///
/// `fixtures` holds deliberate rule violations for the lint's own tests;
/// `vendor` holds the offline stand-ins for external crates, which are
/// outside the domain rules' jurisdiction.
const SKIP_DIRS: &[&str] = &["target", ".git", "vendor", "fixtures", "node_modules"];

/// `true` for files inside a library crate's `src/` tree.
fn is_lib_src(path: &str) -> bool {
    ["core", "power", "serve", "server", "sim"]
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/src/")))
}

/// `true` for modules under the backpressure contract (GH011): the serve
/// daemon and the sim fan-out paths, where every inter-thread queue must
/// be bounded so overload surfaces as an explicit rejection.
#[must_use]
pub fn is_bounded_channel_scope(path: &str) -> bool {
    path.starts_with("crates/serve/src/")
        || path == "crates/sim/src/runner.rs"
        || path == "crates/sim/src/fleet.rs"
}

/// `true` for the files allowed to create OS threads directly (GH012):
/// the work-stealing pool, the sharded runner, and the serve layer's
/// fixed supervision threads (accept loop, spawner, watchdog). All
/// other library code must submit tasks to the pool, so the process
/// thread count stays a structural invariant instead of a function of
/// load.
#[must_use]
pub fn is_thread_spawn_site(path: &str) -> bool {
    [
        "crates/sim/src/sched.rs",
        "crates/sim/src/runner.rs",
        "crates/serve/src/supervisor.rs",
        "crates/serve/src/daemon.rs",
    ]
    .contains(&path)
}

/// `true` for files inside the dimensional crates (`core`, `power`).
fn is_dimensional_src(path: &str) -> bool {
    ["core", "power"]
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/src/")))
}

/// `true` for any crate source file (operator impls can live anywhere).
fn is_crate_src(path: &str) -> bool {
    path.starts_with("crates/") && path.contains("/src/")
}

/// `true` for the solver's hot-loop modules, where per-solve heap
/// allocation is banned (GH006). `scratch.rs` is deliberately out of
/// scope: it is the one solver module allowed to allocate, so the
/// engines can borrow its buffers instead of building their own.
fn is_solver_hot_loop(path: &str) -> bool {
    path == "crates/core/src/solver/grid.rs" || path == "crates/core/src/solver/exact.rs"
}

/// Reads every `.rs` file under `root` (skipping [`SKIP_DIRS`]), returning
/// `(workspace-relative path, contents)` pairs in a stable order.
///
/// # Errors
///
/// Propagates I/O failures from directory traversal or file reads.
pub fn collect_workspace_files(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(files)
}

/// Recursive directory walk backing [`collect_workspace_files`].
fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, fs::read_to_string(&path)?));
        }
    }
    Ok(())
}

/// Runs every rule over the given `(path, source)` set and returns the
/// sorted diagnostics.
#[must_use]
pub fn analyze_files(files: &[(String, String)]) -> Vec<Diagnostic> {
    analyze_files_report(files, None).diagnostics
}

/// The two-phase analysis: builds every [`FileModel`] and the
/// [`SymbolGraph`] (phase 1), runs every rule against them (phase 2),
/// and returns the full [`Report`] — diagnostics, suppression census,
/// and telemetry drift inventory.
///
/// When `rule_filter` names a rule code (e.g. `"GH008"`), only that
/// rule's diagnostics are reported; the census and drift inventory are
/// always complete.
#[must_use]
pub fn analyze_files_report(files: &[(String, String)], rule_filter: Option<&str>) -> Report {
    let models: Vec<FileModel> = files
        .iter()
        .map(|(path, src)| FileModel::build(path, src))
        .collect();
    let graph = SymbolGraph::build(&models);
    let mut diags = Vec::new();
    for model in &models {
        // GH000: a directive that cannot suppress anything is a bug in
        // the annotation, wherever it appears.
        for a in &model.allows {
            if !a.has_reason {
                diags.push(Diagnostic::new(
                    "GH000",
                    &model.path,
                    a.line,
                    format!(
                        "allow({}) directive has no reason; write `greenhetero-lint: allow({}) <why this site is safe>`",
                        a.rules.join(", "),
                        a.rules.join(", ")
                    ),
                ));
            }
        }
        let domains = domains_for(&model.path);
        if is_lib_src(&model.path) {
            rules::gh001::check(model, &mut diags);
            rules::gh005::check(model, &mut diags);
            rules::gh008::check(model, &graph, &mut diags);
            if !domains.contains(&Domain::Timing) {
                rules::gh010::check(model, &mut diags);
            }
        }
        if is_dimensional_src(&model.path) {
            rules::gh002::check(model, &mut diags);
        }
        if is_crate_src(&model.path) {
            rules::gh003::check(model, &mut diags);
        }
        if is_solver_hot_loop(&model.path) {
            rules::gh006::check(model, &mut diags);
        }
        if is_bounded_channel_scope(&model.path) {
            rules::gh011::check(model, &mut diags);
        }
        if is_crate_src(&model.path) && !is_thread_spawn_site(&model.path) {
            rules::gh012::check(model, &mut diags);
        }
        if domains.contains(&Domain::Reduction) || domains.contains(&Domain::Telemetry) {
            rules::gh007::check(model, &graph, &mut diags);
        }
    }
    rules::gh004::check(&models, is_lib_src, &mut diags);
    rules::gh009::check(&models, &graph, is_lib_src, &mut diags);
    if let Some(rule) = rule_filter {
        diags.retain(|d| d.rule == rule);
    }
    diag::sort(&mut diags);
    Report {
        diagnostics: diags,
        suppressions: suppression_census(&models),
        drift: drift_report(&models, &graph),
    }
}

/// Tallies every justified `allow(...)` directive per rule code.
fn suppression_census(models: &[FileModel]) -> Vec<SuppressionRecord> {
    let mut by_rule: std::collections::BTreeMap<String, Vec<SuppressionSite>> =
        std::collections::BTreeMap::new();
    for model in models {
        for a in &model.allows {
            if !a.has_reason {
                continue; // a GH000 diagnostic, not a working suppression
            }
            for rule in &a.rules {
                // Doc comments and examples inside the lint crate spell out
                // the directive syntax with placeholder codes; only tally
                // directives naming a real rule.
                if !RULES.iter().any(|(code, _)| code == rule) {
                    continue;
                }
                by_rule
                    .entry(rule.clone())
                    .or_default()
                    .push(SuppressionSite {
                        file: model.path.clone(),
                        line: a.line,
                    });
            }
        }
    }
    by_rule
        .into_iter()
        .map(|(rule, mut sites)| {
            sites.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
            SuppressionRecord {
                count: sites.len(),
                rule,
                sites,
            }
        })
        .collect()
}

/// Builds the GH009 drift inventory, suppressed entries included.
fn drift_report(models: &[FileModel], graph: &SymbolGraph) -> diag::DriftReport {
    let allowed = |path: &str, line: u32| {
        models
            .iter()
            .find(|m| m.path == path)
            .is_some_and(|m| m.is_allowed(rules::gh009::RULE, line))
    };
    let unused_catalog = graph
        .catalog
        .iter()
        .filter(|c| graph.catalog_uses.get(&c.const_name).copied().unwrap_or(0) == 0)
        .map(|c| diag::UnusedCatalogEntry {
            const_name: c.const_name.clone(),
            metric: c.metric.clone(),
            file: c.file.clone(),
            line: c.line,
            suppressed: allowed(&c.file, c.line),
        })
        .collect();
    let unregistered_literals = graph
        .metric_literals
        .iter()
        .filter(|l| !graph.catalog_values.contains(&l.metric))
        .map(|l| diag::UnregisteredLiteral {
            metric: l.metric.clone(),
            method: l.method.clone(),
            file: l.file.clone(),
            line: l.line,
            suppressed: allowed(&l.file, l.line),
        })
        .collect();
    diag::DriftReport {
        catalog_size: graph.catalog.len(),
        unused_catalog,
        unregistered_literals,
    }
}

/// Scans the workspace rooted at `root` and returns sorted diagnostics.
///
/// # Errors
///
/// Propagates I/O failures from the file walk.
pub fn analyze_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    Ok(analyze_files(&collect_workspace_files(root)?))
}

/// Scans the workspace rooted at `root` and returns the full [`Report`],
/// optionally restricted to one rule's diagnostics.
///
/// # Errors
///
/// Propagates I/O failures from the file walk.
pub fn analyze_workspace_report(root: &Path, rule_filter: Option<&str>) -> io::Result<Report> {
    Ok(analyze_files_report(
        &collect_workspace_files(root)?,
        rule_filter,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> (String, String) {
        (path.to_string(), src.to_string())
    }

    #[test]
    fn rules_are_scoped_to_their_crates() {
        // An unwrap in sim's src is GH001; the same code in an
        // integration-test tree is out of scope.
        let diags = analyze_files(&[
            file(
                "crates/sim/src/lib.rs",
                "fn f(v: Option<u32>) -> u32 { v.unwrap() }\n",
            ),
            file(
                "tests/e2e.rs",
                "fn f(v: Option<u32>) -> u32 { v.unwrap() }\n",
            ),
        ]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "GH001");
        assert_eq!(diags[0].file, "crates/sim/src/lib.rs");
    }

    #[test]
    fn gh002_only_applies_to_dimensional_crates() {
        let src = "/// Doc.\npub fn ratio(x: f64) -> f64 { x }\n";
        let diags = analyze_files(&[
            file("crates/server/src/lib.rs", src),
            file("crates/power/src/lib.rs", src),
        ]);
        let rules: Vec<(&str, &str)> = diags.iter().map(|d| (d.file.as_str(), d.rule)).collect();
        assert!(rules.contains(&("crates/power/src/lib.rs", "GH002")));
        assert!(!rules.contains(&("crates/server/src/lib.rs", "GH002")));
    }

    #[test]
    fn gh006_only_applies_to_hot_loop_modules() {
        // The same allocation is flagged in an engine module, exempt in
        // the scratch arena and everywhere else.
        let src = "fn f(n: usize) -> Vec<f64> { vec![0.0; n] }\n";
        let diags = analyze_files(&[
            file("crates/core/src/solver/grid.rs", src),
            file("crates/core/src/solver/exact.rs", src),
            file("crates/core/src/solver/scratch.rs", src),
            file("crates/core/src/controller.rs", src),
        ]);
        let hits: Vec<&str> = diags
            .iter()
            .filter(|d| d.rule == "GH006")
            .map(|d| d.file.as_str())
            .collect();
        assert_eq!(
            hits,
            vec![
                "crates/core/src/solver/exact.rs",
                "crates/core/src/solver/grid.rs"
            ]
        );
    }

    #[test]
    fn gh012_exempts_the_scheduler_allowlist() {
        // The same spawn is flagged in session code but sanctioned in
        // the pool, the runner, and the supervisor/daemon threads.
        let src = "fn f() { std::thread::spawn(|| ()); }\n";
        let diags = analyze_files(&[
            file("crates/serve/src/session.rs", src),
            file("crates/sim/src/sched.rs", src),
            file("crates/sim/src/runner.rs", src),
            file("crates/serve/src/supervisor.rs", src),
            file("crates/serve/src/daemon.rs", src),
        ]);
        let hits: Vec<&str> = diags
            .iter()
            .filter(|d| d.rule == "GH012")
            .map(|d| d.file.as_str())
            .collect();
        assert_eq!(hits, vec!["crates/serve/src/session.rs"]);
    }

    #[test]
    fn reasonless_allow_is_gh000() {
        let diags = analyze_files(&[file(
            "crates/core/src/x.rs",
            "// greenhetero-lint: allow(GH001)\n/// Doc.\npub fn f() {}\n",
        )]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "GH000");
    }

    #[test]
    fn diagnostics_come_out_sorted() {
        let diags = analyze_files(&[
            file("crates/core/src/b.rs", "fn f(v: Option<u32>) -> u32 { v.unwrap() }\nfn g(v: Option<u32>) -> u32 { v.unwrap() }\n"),
            file("crates/core/src/a.rs", "fn f(v: Option<u32>) -> u32 { v.unwrap() }\n"),
        ]);
        let keys: Vec<(&str, u32)> = diags.iter().map(|d| (d.file.as_str(), d.line)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(diags.len(), 3);
    }
}
