//! CLI for `greenhetero-lint`.
//!
//! ```text
//! cargo run -p greenhetero-lint [-- --root PATH] [--format text|json]
//!                               [--rule GH00N] [--list-rules]
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use greenhetero_lint::{analyze_workspace_report, diag, RULES};

/// Usage text printed for `--help` and echoed on bad usage.
const USAGE: &str =
    "usage: greenhetero-lint [--root PATH] [--format text|json] [--rule GH00N] [--list-rules]

  --root PATH    workspace root to scan (default: walk up to [workspace])
  --format FMT   `text` (default) or `json`; json emits the full report
                 object with diagnostics, suppression census, and the
                 telemetry drift inventory
  --rule CODE    report only diagnostics from one rule (e.g. GH008);
                 the census and drift inventory are still complete
  --list-rules   print the rule table and exit

exit codes: 0 clean, 1 violations found, 2 usage or I/O error";

/// Output format selection.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

/// Parsed command line.
struct Args {
    root: Option<PathBuf>,
    format: Format,
    rule: Option<String>,
    list_rules: bool,
}

/// Parses the argument list; returns an error message on bad usage.
fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        root: None,
        format: Format::Text,
        rule: None,
        list_rules: false,
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => {
                let v = argv.next().ok_or("--root needs a path argument")?;
                args.root = Some(PathBuf::from(v));
            }
            "--format" => {
                let v = argv.next().ok_or("--format needs `text` or `json`")?;
                args.format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--rule" => {
                let v = argv.next().ok_or("--rule needs a rule code, e.g. GH008")?;
                let code = v.to_ascii_uppercase();
                if !RULES.iter().any(|(c, _)| *c == code) {
                    return Err(format!(
                        "unknown rule `{v}`; run --list-rules for the catalog"
                    ));
                }
                args.rule = Some(code);
            }
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => return Err(String::from(USAGE)),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// Walks upward from the current directory to the first `Cargo.toml`
/// declaring a `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for (code, summary) in RULES {
            println!("{code}  {summary}");
        }
        return ExitCode::SUCCESS;
    }
    let root = match args.root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("no workspace root found; pass --root PATH");
            return ExitCode::from(2);
        }
    };
    let report = match analyze_workspace_report(&root, args.rule.as_deref()) {
        Ok(r) => r,
        Err(err) => {
            eprintln!("failed to scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    match args.format {
        Format::Text => {
            print!("{}", diag::render_text(&report.diagnostics));
            if report.diagnostics.is_empty() {
                println!("greenhetero-lint: clean");
            } else {
                println!(
                    "greenhetero-lint: {} violation(s)",
                    report.diagnostics.len()
                );
            }
        }
        Format::Json => print!("{}", diag::render_report_json(&report)),
    }
    if report.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
