//! CLI for `greenhetero-lint`.
//!
//! ```text
//! cargo run -p greenhetero-lint [-- --root PATH] [--format text|json]
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use greenhetero_lint::{analyze_workspace, diag};

/// Output format selection.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

/// Parsed command line.
struct Args {
    root: Option<PathBuf>,
    format: Format,
}

/// Parses the argument list; returns an error message on bad usage.
fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        root: None,
        format: Format::Text,
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => {
                let v = argv.next().ok_or("--root needs a path argument")?;
                args.root = Some(PathBuf::from(v));
            }
            "--format" => {
                let v = argv.next().ok_or("--format needs `text` or `json`")?;
                args.format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--help" | "-h" => {
                return Err(String::from(
                    "usage: greenhetero-lint [--root PATH] [--format text|json]",
                ))
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// Walks upward from the current directory to the first `Cargo.toml`
/// declaring a `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let root = match args.root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("no workspace root found; pass --root PATH");
            return ExitCode::from(2);
        }
    };
    let diags = match analyze_workspace(Path::new(&root)) {
        Ok(d) => d,
        Err(err) => {
            eprintln!("failed to scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    match args.format {
        Format::Text => {
            print!("{}", diag::render_text(&diags));
            if diags.is_empty() {
                println!("greenhetero-lint: clean");
            } else {
                println!("greenhetero-lint: {} violation(s)", diags.len());
            }
        }
        Format::Json => print!("{}", diag::render_json(&diags)),
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
