//! Diagnostics: the violation record, ordering, the two output formats
//! (`text` and `json`), and the full analysis [`Report`] with its
//! suppression census and telemetry drift inventory.

use std::fmt;

/// One rule violation at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule code, e.g. `GH001`.
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable explanation of the violation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    #[must_use]
    pub fn new(rule: &'static str, file: &str, line: u32, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            file: file.to_string(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Sorts diagnostics into the stable report order: by file, then line,
/// then rule code.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
}

/// Renders diagnostics in the line-oriented text format, one per line.
#[must_use]
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

/// Renders diagnostics as a stable JSON array of
/// `{"rule", "file", "line", "message"}` objects, sorted like
/// [`sort`]. The format is documented in DESIGN.md and is safe to parse
/// from CI tooling.
#[must_use]
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        out.push_str(&format!("\"rule\": \"{}\", ", escape(d.rule)));
        out.push_str(&format!("\"file\": \"{}\", ", escape(&d.file)));
        out.push_str(&format!("\"line\": {}, ", d.line));
        out.push_str(&format!("\"message\": \"{}\"}}", escape(&d.message)));
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// One justified `greenhetero-lint: allow(...)` site, as recorded in the
/// suppression census.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuppressionSite {
    /// Workspace-relative file path of the directive.
    pub file: String,
    /// 1-based line the directive comment sits on.
    pub line: u32,
}

/// Per-rule tally of justified escape hatches across the scanned tree.
///
/// The census counts every *justified* directive naming the rule,
/// whether or not a violation currently sits under it — it is an
/// inventory of where the codebase has opted out, not of masked
/// diagnostics. (Reasonless directives are GH000 violations instead.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuppressionRecord {
    /// The rule code the directives name.
    pub rule: String,
    /// Number of justified directives naming this rule.
    pub count: usize,
    /// Every directive site, sorted by file then line.
    pub sites: Vec<SuppressionSite>,
}

/// One catalog constant with no live use (GH009 drift, catalog → code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnusedCatalogEntry {
    /// The constant's identifier.
    pub const_name: String,
    /// The metric name it holds.
    pub metric: String,
    /// File of the catalog declaration.
    pub file: String,
    /// 1-based declaration line.
    pub line: u32,
    /// `true` when a justified `allow(GH009)` covers the declaration.
    pub suppressed: bool,
}

/// One registration literal missing from the catalog (GH009 drift,
/// code → catalog).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnregisteredLiteral {
    /// The literal metric name.
    pub metric: String,
    /// Which instrument method it was passed to.
    pub method: String,
    /// File of the call site.
    pub file: String,
    /// 1-based line of the call site.
    pub line: u32,
    /// `true` when a justified `allow(GH009)` covers the site.
    pub suppressed: bool,
}

/// The GH009 drift inventory: both directions of catalog/code skew,
/// *including* suppressed entries (a drift the team has signed off on is
/// still drift worth seeing in CI artifacts).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DriftReport {
    /// Number of constants in the `telemetry::names` catalog.
    pub catalog_size: usize,
    /// Catalog constants with no live use.
    pub unused_catalog: Vec<UnusedCatalogEntry>,
    /// Registration literals absent from the catalog.
    pub unregistered_literals: Vec<UnregisteredLiteral>,
}

/// The full result of one analysis run: diagnostics plus the suppression
/// census and the telemetry drift inventory.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Sorted rule violations.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-rule suppression census, sorted by rule code.
    pub suppressions: Vec<SuppressionRecord>,
    /// Telemetry-name drift, both directions.
    pub drift: DriftReport,
}

/// Renders a full [`Report`] as a stable JSON object:
///
/// ```json
/// {
///   "diagnostics": [ {"rule", "file", "line", "message"}, … ],
///   "suppressions": [ {"rule", "count", "sites": [{"file", "line"}, …]}, … ],
///   "drift": {
///     "catalog_size": N,
///     "unused_catalog": [ {"const", "metric", "file", "line", "suppressed"}, … ],
///     "unregistered_literals": [ {"metric", "method", "file", "line", "suppressed"}, … ]
///   }
/// }
/// ```
///
/// `diagnostics` is exactly the array [`render_json`] produces.
#[must_use]
pub fn render_report_json(report: &Report) -> String {
    let mut out = String::from("{\n\"diagnostics\": ");
    out.push_str(render_json(&report.diagnostics).trim_end());
    out.push_str(",\n\"suppressions\": [");
    for (i, s) in report.suppressions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\": \"{}\", \"count\": {}, \"sites\": [",
            escape(&s.rule),
            s.count
        ));
        for (j, site) in s.sites.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"file\": \"{}\", \"line\": {}}}",
                escape(&site.file),
                site.line
            ));
        }
        out.push_str("]}");
    }
    if !report.suppressions.is_empty() {
        out.push('\n');
    }
    out.push_str("],\n\"drift\": {\n");
    out.push_str(&format!(
        "  \"catalog_size\": {},\n  \"unused_catalog\": [",
        report.drift.catalog_size
    ));
    for (i, u) in report.drift.unused_catalog.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"const\": \"{}\", \"metric\": \"{}\", \"file\": \"{}\", \"line\": {}, \"suppressed\": {}}}",
            escape(&u.const_name),
            escape(&u.metric),
            escape(&u.file),
            u.line,
            u.suppressed
        ));
    }
    if !report.drift.unused_catalog.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"unregistered_literals\": [");
    for (i, l) in report.drift.unregistered_literals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"metric\": \"{}\", \"method\": \"{}\", \"file\": \"{}\", \"line\": {}, \"suppressed\": {}}}",
            escape(&l.metric),
            escape(&l.method),
            escape(&l.file),
            l.line,
            l.suppressed
        ));
    }
    if !report.drift.unregistered_literals.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n}\n");
    out
}

/// Escapes a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_format_is_rustc_style() {
        let d = Diagnostic::new("GH001", "crates/core/src/lib.rs", 12, "no unwrap");
        assert_eq!(
            d.to_string(),
            "crates/core/src/lib.rs:12: [GH001] no unwrap"
        );
    }

    #[test]
    fn sort_orders_by_file_line_rule() {
        let mut v = vec![
            Diagnostic::new("GH005", "b.rs", 1, "m"),
            Diagnostic::new("GH001", "a.rs", 9, "m"),
            Diagnostic::new("GH001", "a.rs", 2, "m"),
            Diagnostic::new("GH001", "b.rs", 1, "m"),
        ];
        sort(&mut v);
        let order: Vec<(&str, u32, &str)> = v
            .iter()
            .map(|d| (d.file.as_str(), d.line, d.rule))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a.rs", 2, "GH001"),
                ("a.rs", 9, "GH001"),
                ("b.rs", 1, "GH001"),
                ("b.rs", 1, "GH005")
            ]
        );
    }

    #[test]
    fn json_escapes_and_terminates() {
        let v = vec![Diagnostic::new(
            "GH002",
            "a.rs",
            3,
            "bare `f64` in \"pub\" fn",
        )];
        let json = render_json(&v);
        assert!(json.starts_with('['));
        assert!(json.ends_with("]\n"));
        assert!(json.contains("\\\"pub\\\""));
        assert_eq!(render_json(&[]), "[]\n");
    }
}
