//! Diagnostics: the violation record, ordering, and the two output
//! formats (`text` and `json`).

use std::fmt;

/// One rule violation at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule code, e.g. `GH001`.
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable explanation of the violation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    #[must_use]
    pub fn new(rule: &'static str, file: &str, line: u32, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            file: file.to_string(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Sorts diagnostics into the stable report order: by file, then line,
/// then rule code.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
}

/// Renders diagnostics in the line-oriented text format, one per line.
#[must_use]
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

/// Renders diagnostics as a stable JSON array of
/// `{"rule", "file", "line", "message"}` objects, sorted like
/// [`sort`]. The format is documented in DESIGN.md and is safe to parse
/// from CI tooling.
#[must_use]
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        out.push_str(&format!("\"rule\": \"{}\", ", escape(d.rule)));
        out.push_str(&format!("\"file\": \"{}\", ", escape(&d.file)));
        out.push_str(&format!("\"line\": {}, ", d.line));
        out.push_str(&format!("\"message\": \"{}\"}}", escape(&d.message)));
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Escapes a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_format_is_rustc_style() {
        let d = Diagnostic::new("GH001", "crates/core/src/lib.rs", 12, "no unwrap");
        assert_eq!(
            d.to_string(),
            "crates/core/src/lib.rs:12: [GH001] no unwrap"
        );
    }

    #[test]
    fn sort_orders_by_file_line_rule() {
        let mut v = vec![
            Diagnostic::new("GH005", "b.rs", 1, "m"),
            Diagnostic::new("GH001", "a.rs", 9, "m"),
            Diagnostic::new("GH001", "a.rs", 2, "m"),
            Diagnostic::new("GH001", "b.rs", 1, "m"),
        ];
        sort(&mut v);
        let order: Vec<(&str, u32, &str)> = v
            .iter()
            .map(|d| (d.file.as_str(), d.line, d.rule))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a.rs", 2, "GH001"),
                ("a.rs", 9, "GH001"),
                ("b.rs", 1, "GH001"),
                ("b.rs", 1, "GH005")
            ]
        );
    }

    #[test]
    fn json_escapes_and_terminates() {
        let v = vec![Diagnostic::new(
            "GH002",
            "a.rs",
            3,
            "bare `f64` in \"pub\" fn",
        )];
        let json = render_json(&v);
        assert!(json.starts_with('['));
        assert!(json.ends_with("]\n"));
        assert!(json.contains("\\\"pub\\\""));
        assert_eq!(render_json(&[]), "[]\n");
    }
}
