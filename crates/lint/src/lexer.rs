//! A comment- and string-aware Rust token scanner.
//!
//! The offline build environment cannot fetch `syn`, so this crate carries
//! its own lexical front end: a scanner that splits Rust source into
//! identifier / punctuation / literal tokens with line numbers, while
//! recording comments (for `greenhetero-lint: allow(...)` directives and
//! doc-comment detection). The domain rules (GH001–GH005) are all
//! expressible over this token stream plus brace matching — none of them
//! needs full expression parsing.
//!
//! The scanner understands every Rust 2021 lexical form that affects
//! correctness of token extraction: line and (nested) block comments,
//! string / raw-string / byte-string / C-string literals, char literals
//! versus lifetimes, and numeric literals with suffixes.

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token's text. For literals this is the raw source slice.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// Token classification, deliberately coarse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the rules match on text).
    Ident,
    /// A single punctuation character (`.`, `!`, `{`, …). Multi-character
    /// operators arrive as consecutive tokens.
    Punct,
    /// String/char/numeric literal (content is not interpreted).
    Literal,
    /// A lifetime such as `'a` (kept distinct so char literals are not
    /// confused with lifetimes).
    Lifetime,
}

/// One comment, retained for directive and doc detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text without the `//`/`/*` markers, trimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// `true` for `///`, `//!`, `/**`, or `/*!` doc comments.
    pub is_doc: bool,
}

/// The result of scanning one file.
#[derive(Debug, Default)]
pub struct Scanned {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Scans Rust source text into tokens and comments.
///
/// The scanner is infallible: unrecognized bytes are skipped. That is the
/// right behavior for a lint front end — a file that does not parse will
/// fail `cargo build` long before this tool matters.
#[must_use]
pub fn scan(source: &str) -> Scanned {
    let bytes = source.as_bytes();
    let mut out = Scanned::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    macro_rules! bump_lines {
        ($slice:expr) => {
            line += $slice.iter().filter(|&&b| b == b'\n').count() as u32
        };
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                let start_line = line;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let raw = &source[start..i];
                let is_doc = raw.starts_with("///") || raw.starts_with("//!");
                let text = raw.trim_start_matches('/').trim_start_matches('!');
                out.comments.push(Comment {
                    text: text.trim().to_string(),
                    line: start_line,
                    is_doc,
                });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1u32;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                let raw = &source[start..i];
                let is_doc = raw.starts_with("/**") || raw.starts_with("/*!");
                out.comments.push(Comment {
                    text: raw
                        .trim_start_matches('/')
                        .trim_matches('*')
                        .trim_matches('!')
                        .trim()
                        .to_string(),
                    line: start_line,
                    is_doc,
                });
            }
            b'"' => {
                let (end, consumed) = scan_string(bytes, i);
                bump_lines!(&bytes[i..end]);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: source[i..end].to_string(),
                    line: line - count_newlines(&bytes[i..end]),
                });
                i = end;
                debug_assert!(consumed > 0, "string scan must make progress");
            }
            b'r' | b'b' | b'c' if is_raw_or_byte_string_start(bytes, i) => {
                let start_line = line;
                let end = scan_raw_or_prefixed_string(bytes, i);
                bump_lines!(&bytes[i..end]);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: source[i..end].to_string(),
                    line: start_line,
                });
                i = end;
            }
            b'\'' => {
                // Disambiguate char literal from lifetime.
                let (end, kind) = scan_quote(bytes, i);
                out.tokens.push(Token {
                    kind,
                    text: source[i..end].to_string(),
                    line,
                });
                i = end;
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    // `1..2` — stop before a range operator.
                    if bytes[i] == b'.' && bytes.get(i + 1) == Some(&b'.') {
                        break;
                    }
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: source[start..i].to_string(),
                    line,
                });
            }
            _ if b == b'_' || b.is_ascii_alphabetic() => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: source[start..i].to_string(),
                    line,
                });
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: source[i..i + 1].to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn count_newlines(bytes: &[u8]) -> u32 {
    bytes.iter().filter(|&&b| b == b'\n').count() as u32
}

/// Scans a regular `"…"` string starting at `start`; returns the index one
/// past the closing quote and the number of bytes consumed.
fn scan_string(bytes: &[u8], start: usize) -> (usize, usize) {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => {
                i += 1;
                return (i, i - start);
            }
            _ => i += 1,
        }
    }
    (i, i - start)
}

/// `true` if position `i` starts a raw/byte/C string or raw identifier
/// that must be consumed as a unit (`r"`, `r#"`, `b"`, `br#"`, `c"`, …).
fn is_raw_or_byte_string_start(bytes: &[u8], i: usize) -> bool {
    let rest = &bytes[i..];
    let after_prefix = |n: usize| -> bool { matches!(rest.get(n), Some(&b'"') | Some(&b'#')) };
    match rest.first() {
        Some(&b'r') | Some(&b'c') => after_prefix(1),
        Some(&b'b') => {
            // b"…", br"…", br#"…"#
            matches!(rest.get(1), Some(&b'"')) || (rest.get(1) == Some(&b'r') && after_prefix(2))
        }
        _ => false,
    }
}

/// Scans a raw / byte / C string starting at `start`; returns the index one
/// past its end.
fn scan_raw_or_prefixed_string(bytes: &[u8], start: usize) -> usize {
    let mut i = start;
    // Skip the prefix letters.
    while i < bytes.len() && (bytes[i] == b'r' || bytes[i] == b'b' || bytes[i] == b'c') {
        i += 1;
    }
    let mut hashes = 0usize;
    while i < bytes.len() && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        // Not actually a string (e.g. identifier starting with b); consume
        // one byte and let the main loop re-tokenize.
        return start + 1;
    }
    i += 1;
    if hashes == 0 {
        // Raw string without hashes still has no escapes.
        while i < bytes.len() {
            if bytes[i] == b'"' {
                return i + 1;
            }
            i += 1;
        }
        return i;
    }
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut ok = true;
            for k in 0..hashes {
                if bytes.get(i + 1 + k) != Some(&b'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Scans from a `'`: either a char literal (`'a'`, `'\n'`) or a lifetime
/// (`'static`). Returns the end index and the token kind.
fn scan_quote(bytes: &[u8], start: usize) -> (usize, TokenKind) {
    let next = bytes.get(start + 1).copied();
    match next {
        Some(b'\\') => {
            // Escaped char literal: the byte after the backslash is escape
            // payload even when it is itself a backslash or quote (`'\\'`,
            // `'\''`), so skip past it unconditionally, then scan to the
            // closing quote (covers the longer `'\u{..}'`/`'\x41'` forms).
            let mut i = start + 3;
            while i < bytes.len() && bytes[i] != b'\'' {
                i += 1;
            }
            ((i + 1).min(bytes.len()), TokenKind::Literal)
        }
        Some(c) if c == b'_' || c.is_ascii_alphabetic() => {
            // 'x' is a char literal iff a quote follows immediately;
            // otherwise it is a lifetime.
            if bytes.get(start + 2) == Some(&b'\'') {
                (start + 3, TokenKind::Literal)
            } else {
                let mut i = start + 1;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                (i, TokenKind::Lifetime)
            }
        }
        Some(_) => {
            // Some other char literal like '(' — find the closing quote.
            let mut i = start + 1;
            while i < bytes.len() && bytes[i] != b'\'' {
                i += 1;
            }
            (i.min(bytes.len() - 1) + 1, TokenKind::Literal)
        }
        None => (start + 1, TokenKind::Punct),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_do_not_produce_tokens() {
        let s = scan("// unwrap() in a comment\nfn main() {}\n/* panic! */");
        assert_eq!(idents("// unwrap()\nfn x() {}"), vec!["fn", "x"]);
        assert_eq!(s.comments.len(), 2);
        assert!(!s.comments[0].is_doc);
    }

    #[test]
    fn doc_comments_are_flagged() {
        let s = scan("/// docs here\npub fn f() {}\n//! inner\n");
        assert!(s.comments[0].is_doc);
        assert!(s.comments[1].is_doc);
        assert_eq!(s.comments[0].line, 1);
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = scan(r#"let x = "unwrap() panic!"; y"#);
        let names: Vec<_> = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(names, vec!["let", "x", "y"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let s = r#\"has \"quotes\" and unwrap()\"#; z";
        let names = idents(src);
        assert_eq!(names, vec!["let", "s", "z"]);
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let s = scan("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = s
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let literals = s
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(literals, 2);
    }

    #[test]
    fn backslash_and_quote_char_literals_end_at_their_closing_quote() {
        // `'\\'` and `'\''` must not swallow the closing quote — doing so
        // makes the scan run on to the next apostrophe in the file and
        // corrupts line/test-range tracking for everything after.
        let s = scan("let a = '\\\\'; let b = '\\''; after.unwrap()");
        let names = idents("let a = '\\\\'; let b = '\\''; after.unwrap()");
        assert_eq!(names, vec!["let", "a", "let", "b", "after", "unwrap"]);
        let lits: Vec<_> = s
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lits, vec!["'\\\\'", "'\\''"]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let s = scan("a\nb\n\nc");
        let lines: Vec<u32> = s.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn nested_block_comments() {
        let names = idents("/* outer /* inner */ still comment */ fn g() {}");
        assert_eq!(names, vec!["fn", "g"]);
    }

    #[test]
    fn numeric_literals_with_ranges() {
        let s = scan("0.0..3000.0f64");
        let lits: Vec<_> = s
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lits, vec!["0.0", "3000.0f64"]);
    }
}
