//! GH011: no unbounded channels in the backpressure-scoped modules.
//!
//! The serve daemon's robustness contract (DESIGN.md §13) is that a slow
//! consumer surfaces as an explicit `backpressure` rejection, never as
//! unbounded memory growth: every queue between the accept loop, the
//! supervisor, and the session threads must be a bounded
//! `mpsc::sync_channel(n)` whose `try_send` failure is handled. An
//! unbounded `mpsc::channel()` (or a `crossbeam`-style `unbounded()`)
//! silently converts overload into an OOM long after the cause. The rule
//! is scoped by [`is_bounded_channel_scope`] to the serve crate and the
//! sim fan-out modules (`runner.rs`, `fleet.rs`) — elsewhere, e.g. a
//! rendezvous channel in a CLI, an unbounded queue can be fine.
//!
//! [`is_bounded_channel_scope`]: crate::is_bounded_channel_scope

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::model::FileModel;

/// The rule code.
pub const RULE: &str = "GH011";

/// Runs GH011 over one file inside the bounded-channel scope.
pub fn check(model: &FileModel, diags: &mut Vec<Diagnostic>) {
    let tokens = &model.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let called = tokens.get(i + 1).map(|n| n.text.as_str()) == Some("(");
        let what = match t.text.as_str() {
            // `mpsc::channel()` / `channel::<T>()`; `sync_channel` is a
            // different token and never matches.
            "channel" if called => "`channel()`",
            "channel"
                if tokens.get(i + 1).map(|n| n.text.as_str()) == Some(":")
                    && tokens.get(i + 2).map(|n| n.text.as_str()) == Some(":")
                    && tokens.get(i + 3).map(|n| n.text.as_str()) == Some("<") =>
            {
                "`channel::<_>()`"
            }
            // crossbeam-style constructor, in case a vendored stand-in
            // ever grows one.
            "unbounded" if called => "`unbounded()`",
            _ => continue,
        };
        if model.in_test_code(t.line) || model.is_allowed(RULE, t.line) {
            continue;
        }
        diags.push(Diagnostic::new(
            RULE,
            &model.path,
            t.line,
            format!(
                "{what} creates an unbounded queue in a backpressure-scoped module; use `mpsc::sync_channel(n)` and handle `try_send` failure as an explicit rejection"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let model = FileModel::build(path, src);
        let mut diags = Vec::new();
        check(&model, &mut diags);
        diags
    }

    #[test]
    fn fixture_fail_is_flagged() {
        let diags = run(
            "crates/serve/src/supervisor.rs",
            include_str!("../../fixtures/gh011_fail.rs"),
        );
        assert!(
            diags.len() >= 2,
            "expected channel() and unbounded() hits: {diags:?}"
        );
        assert!(diags.iter().all(|d| d.rule == RULE));
    }

    #[test]
    fn fixture_pass_is_clean() {
        let diags = run(
            "crates/serve/src/supervisor.rs",
            include_str!("../../fixtures/gh011_pass.rs"),
        );
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn sync_channel_is_not_channel() {
        let diags = run(
            "crates/serve/src/daemon.rs",
            "use std::sync::mpsc::sync_channel;\nfn f() { let (tx, rx) = sync_channel::<u32>(8); }\n",
        );
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn turbofish_channel_is_flagged() {
        let diags = run(
            "crates/sim/src/runner.rs",
            "use std::sync::mpsc;\nfn f() { let (tx, rx) = mpsc::channel::<u32>(); }\n",
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn test_code_and_allows_are_exempt() {
        let diags = run(
            "crates/serve/src/session.rs",
            "// greenhetero-lint: allow(GH011) completion-ack channel holds at most one message by construction\nfn f() { let (tx, rx) = std::sync::mpsc::channel::<()>(); }\n#[cfg(test)]\nmod tests {\n    fn g() { let (tx, rx) = std::sync::mpsc::channel::<()>(); }\n}\n",
        );
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }
}
