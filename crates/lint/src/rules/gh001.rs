//! GH001: no `unwrap`/`expect`/`panic!`/`unreachable!` (or `todo!`/
//! `unimplemented!`) in non-test library code.
//!
//! A solver or controller that can panic takes down the whole simulation;
//! library code must surface failures as `CoreError` values instead.
//! Genuinely-infallible sites can opt out with
//! `// greenhetero-lint: allow(GH001) <reason>`.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::model::FileModel;

/// The rule code.
pub const RULE: &str = "GH001";

/// Runs GH001 over one file.
pub fn check(model: &FileModel, diags: &mut Vec<Diagnostic>) {
    let tokens = &model.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let found: Option<String> = match t.text.as_str() {
            // Method calls: `.unwrap()` / `.expect("…")`.
            "unwrap" | "expect" => {
                let is_method_call = i > 0
                    && tokens[i - 1].text == "."
                    && tokens.get(i + 1).map(|n| n.text.as_str()) == Some("(");
                is_method_call.then(|| format!(".{}()", t.text))
            }
            // Panicking macros.
            "panic" | "unreachable" | "todo" | "unimplemented" => {
                let is_macro = tokens.get(i + 1).map(|n| n.text.as_str()) == Some("!");
                is_macro.then(|| format!("{}!", t.text))
            }
            _ => None,
        };
        let Some(what) = found else {
            continue;
        };
        if model.in_test_code(t.line) || model.is_allowed(RULE, t.line) {
            continue;
        }
        diags.push(Diagnostic::new(
            RULE,
            &model.path,
            t.line,
            format!("`{what}` in library code; return a `CoreError` (or document infallibility with a `greenhetero-lint: allow(GH001) <reason>` comment)"),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let model = FileModel::build("f.rs", src);
        let mut diags = Vec::new();
        check(&model, &mut diags);
        diags
    }

    #[test]
    fn fixture_fail_is_flagged() {
        let diags = run(include_str!("../../fixtures/gh001_fail.rs"));
        assert!(
            diags.len() >= 4,
            "expected unwrap/expect/panic/unreachable hits, got {diags:?}"
        );
        assert!(diags.iter().all(|d| d.rule == "GH001"));
    }

    #[test]
    fn fixture_pass_is_clean() {
        let diags = run(include_str!("../../fixtures/gh001_pass.rs"));
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        assert!(run("fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n").is_empty());
        assert!(run("fn f(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0) }\n").is_empty());
    }

    #[test]
    fn string_and_comment_occurrences_are_ignored() {
        assert!(run("// .unwrap() is banned\nfn f() -> &'static str { \"panic!\" }\n").is_empty());
    }
}
