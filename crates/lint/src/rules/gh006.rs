//! GH006: no per-solve heap allocation in the solver hot-loop modules.
//!
//! `solve_grid` and `solve_exact` run once per epoch times every sweep
//! scenario; a `Vec` built per call shows up directly in epoch wall
//! time. Hot-loop working memory must come from the reusable
//! `SolverScratch` buffers (whose module, `scratch.rs`, is deliberately
//! outside this rule's scope — it is the one place allowed to
//! allocate). One-time setup allocations can opt out with
//! `// greenhetero-lint: allow(GH006) <reason>`.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::model::FileModel;

/// The rule code.
pub const RULE: &str = "GH006";

/// Runs GH006 over one file (the caller scopes it to hot-loop modules).
pub fn check(model: &FileModel, diags: &mut Vec<Diagnostic>) {
    let tokens = &model.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let next = |n: usize| tokens.get(i + n).map(|tok| tok.text.as_str());
        let found: Option<String> = match t.text.as_str() {
            // Constructor paths: `Vec::new()`, `Vec::with_capacity(n)`,
            // `Vec::from(x)`. A bare `Vec<...>` type mention is fine.
            "Vec" => (next(1) == Some(":") && next(2) == Some(":"))
                .then(|| next(3))
                .flatten()
                .filter(|c| matches!(*c, "new" | "with_capacity" | "from"))
                .map(|c| format!("Vec::{c}")),
            // The `vec![…]` macro.
            "vec" => (next(1) == Some("!")).then(|| "vec!".to_owned()),
            // Allocating method calls: `.to_vec()` and `.collect()`
            // (with or without a turbofish).
            "to_vec" | "collect" => {
                let is_method = i > 0 && tokens[i - 1].text == ".";
                let is_call =
                    next(1) == Some("(") || (next(1) == Some(":") && next(2) == Some(":"));
                (is_method && is_call).then(|| format!(".{}()", t.text))
            }
            _ => None,
        };
        let Some(what) = found else {
            continue;
        };
        if model.in_test_code(t.line) || model.is_allowed(RULE, t.line) {
            continue;
        }
        diags.push(Diagnostic::new(
            RULE,
            &model.path,
            t.line,
            format!("`{what}` allocates in a solver hot-loop module; draw working memory from `SolverScratch` (or justify with a `greenhetero-lint: allow(GH006) <reason>` comment)"),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let model = FileModel::build("f.rs", src);
        let mut diags = Vec::new();
        check(&model, &mut diags);
        diags
    }

    #[test]
    fn fixture_fail_is_flagged() {
        let diags = run(include_str!("../../fixtures/gh006_fail.rs"));
        assert!(
            diags.len() >= 4,
            "expected Vec::new/to_vec/collect/vec! hits, got {diags:?}"
        );
        assert!(diags.iter().all(|d| d.rule == "GH006"));
    }

    #[test]
    fn fixture_pass_is_clean() {
        let diags = run(include_str!("../../fixtures/gh006_pass.rs"));
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn type_mentions_and_non_method_idents_are_fine() {
        assert!(run("fn f(v: Vec<u32>) -> usize { v.len() }\n").is_empty());
        assert!(run("fn collect(x: u32) -> u32 { x }\nfn g() -> u32 { collect(1) }\n").is_empty());
    }

    #[test]
    fn turbofish_collect_is_flagged() {
        let diags = run("fn f(v: &[u32]) -> Vec<u32> { v.iter().copied().collect::<Vec<_>>() }\n");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains(".collect()"));
    }

    #[test]
    fn same_line_allow_suppresses() {
        let src = "fn f(n: usize) -> Vec<f64> {\n    vec![0.0; n] // greenhetero-lint: allow(GH006) constructor allocation, outside the walk\n}\n";
        assert!(run(src).is_empty());
    }
}
