//! GH010: no ambient nondeterminism outside the allowlisted timing set.
//!
//! `Instant::now`, `SystemTime`, `thread::current().id()`, and default
//! `RandomState` hashers all read process-ambient state. In a result path
//! they make two runs of the same seeded scenario differ; the ROADMAP's
//! determinism guarantee only tolerates them in the modules tagged
//! `Timing` in [`DETERMINISM_DOMAINS`] (phase-duration histograms, bench
//! harnesses), where wall time is the *measurement*, not an input.
//!
//! [`DETERMINISM_DOMAINS`]: crate::DETERMINISM_DOMAINS

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::model::FileModel;

/// The rule code.
pub const RULE: &str = "GH010";

/// Runs GH010 over one library file that is *not* tagged `Timing`.
pub fn check(model: &FileModel, diags: &mut Vec<Diagnostic>) {
    let tokens = &model.tokens;
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let found: Option<(&str, &str)> = match t.text.as_str() {
            "Instant"
                if tokens.get(i + 1).map(|n| n.text.as_str()) == Some(":")
                    && tokens.get(i + 2).map(|n| n.text.as_str()) == Some(":")
                    && tokens.get(i + 3).map(|n| n.text.as_str()) == Some("now") =>
            {
                Some(("`Instant::now()`", "reads the ambient monotonic clock"))
            }
            "SystemTime" => Some(("`SystemTime`", "reads the ambient wall clock")),
            "thread"
                if tokens.get(i + 1).map(|n| n.text.as_str()) == Some(":")
                    && tokens.get(i + 2).map(|n| n.text.as_str()) == Some(":")
                    && tokens.get(i + 3).map(|n| n.text.as_str()) == Some("current") =>
            {
                Some(("`thread::current()`", "depends on scheduler identity"))
            }
            "RandomState" => Some((
                "`RandomState`",
                "is seeded per-process (the default hasher of `HashMap`)",
            )),
            _ => None,
        };
        let Some((what, why)) = found else {
            continue;
        };
        if model.in_test_code(t.line) || model.is_allowed(RULE, t.line) {
            continue;
        }
        diags.push(Diagnostic::new(
            RULE,
            &model.path,
            t.line,
            format!(
                "{what} {why}, which breaks seeded-run determinism; thread simulated time through explicitly, or move this into a `Timing`-tagged module"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let model = FileModel::build(path, src);
        let mut diags = Vec::new();
        check(&model, &mut diags);
        diags
    }

    #[test]
    fn fixture_fail_is_flagged() {
        let diags = run(
            "crates/sim/src/fleet.rs",
            include_str!("../../fixtures/gh010_fail.rs"),
        );
        assert!(
            diags.len() >= 4,
            "expected Instant, SystemTime, thread::current, RandomState: {diags:?}"
        );
        assert!(diags.iter().all(|d| d.rule == RULE));
    }

    #[test]
    fn fixture_pass_is_clean() {
        let diags = run(
            "crates/sim/src/fleet.rs",
            include_str!("../../fixtures/gh010_pass.rs"),
        );
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn instant_elapsed_without_now_is_clean() {
        // Taking a `Duration` parameter or mentioning the type is fine;
        // only the ambient read is banned.
        let diags = run(
            "crates/sim/src/fleet.rs",
            "use std::time::{Duration, Instant};\nfn f(started: Instant) -> Duration { started.elapsed() }\n",
        );
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn test_code_and_allows_are_exempt() {
        let diags = run(
            "crates/sim/src/fleet.rs",
            "// greenhetero-lint: allow(GH010) one-shot setup cost measured outside the result path\nfn f() { let t = Instant::now(); }\n#[cfg(test)]\nmod tests {\n    fn g() { let t = Instant::now(); }\n}\n",
        );
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }
}
