//! GH003: arithmetic between two unit newtypes must be a sanctioned
//! dimensional identity (see [`crate::dimensions::SANCTIONED`]).
//!
//! The table is the single place where the model's physics is declared;
//! an `impl Mul<SimDuration> for WattHours` (energy × time?) would compile
//! fine but mean nothing, so the lint forces every cross-newtype operator
//! through review.

use crate::diag::Diagnostic;
use crate::dimensions::{base_op, is_sanctioned, is_unit_newtype};
use crate::lexer::TokenKind;
use crate::model::FileModel;

/// The rule code.
pub const RULE: &str = "GH003";

/// Runs GH003 over one file.
pub fn check(model: &FileModel, diags: &mut Vec<Diagnostic>) {
    for block in &model.impls {
        let Some(trait_name) = block.trait_name.as_deref() else {
            continue;
        };
        let Some(op) = base_op(trait_name) else {
            continue;
        };
        let lhs = block.target.as_str();
        let rhs = block.trait_generic.as_deref().unwrap_or(lhs);
        if !is_unit_newtype(lhs) || !is_unit_newtype(rhs) {
            continue;
        }
        // `*Assign` ops have no `Output`; they produce the left-hand type.
        let output = if trait_name.ends_with("Assign") {
            lhs.to_string()
        } else {
            find_output(model, block.body_start, block.body_end).unwrap_or_else(|| lhs.to_string())
        };
        if is_sanctioned(op, lhs, rhs, &output) {
            continue;
        }
        if model.is_allowed(RULE, block.line) {
            continue;
        }
        diags.push(Diagnostic::new(
            RULE,
            &model.path,
            block.line,
            format!(
                "`{lhs} {op} {rhs} = {output}` is not in the sanctioned dimension table; extend `crates/lint/src/dimensions.rs` if this identity is physically meaningful"
            ),
        ));
    }
}

/// Finds the `type Output = X;` identifier inside an impl body.
fn find_output(model: &FileModel, start: usize, end: usize) -> Option<String> {
    let tokens = &model.tokens;
    let mut i = start;
    while i + 3 <= end {
        if tokens[i].kind == TokenKind::Ident
            && tokens[i].text == "type"
            && tokens[i + 1].text == "Output"
            && tokens[i + 2].text == "="
        {
            // The output type's base identifier is the last ident before `;`.
            let mut j = i + 3;
            let mut last = None;
            while j <= end && tokens[j].text != ";" {
                if tokens[j].kind == TokenKind::Ident {
                    last = Some(tokens[j].text.clone());
                }
                j += 1;
            }
            return last;
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let model = FileModel::build("f.rs", src);
        let mut diags = Vec::new();
        check(&model, &mut diags);
        diags
    }

    #[test]
    fn fixture_fail_is_flagged() {
        let diags = run(include_str!("../../fixtures/gh003_fail.rs"));
        assert!(
            !diags.is_empty(),
            "expected unsanctioned impls, got {diags:?}"
        );
        assert!(diags.iter().all(|d| d.rule == "GH003"));
    }

    #[test]
    fn fixture_pass_is_clean() {
        let diags = run(include_str!("../../fixtures/gh003_pass.rs"));
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn scalar_operands_are_out_of_scope() {
        let src = "impl Mul<f64> for Watts {\n type Output = Watts;\n fn mul(self, r: f64) -> Watts { Watts(self.0 * r) }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn wrong_output_is_flagged() {
        let src = "impl Mul<SimDuration> for Watts {\n type Output = Watts;\n fn mul(self, r: SimDuration) -> Watts { self }\n}\n";
        let diags = run(src);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("Watts Mul SimDuration = Watts"));
    }

    #[test]
    fn assign_ops_normalize_to_base() {
        assert!(run(
            "impl AddAssign for Watts { fn add_assign(&mut self, r: Watts) { self.0 += r.0 } }\n"
        )
        .is_empty());
        assert_eq!(
            run("impl SubAssign<Ratio> for Watts { fn sub_assign(&mut self, r: Ratio) {} }\n")
                .len(),
            1
        );
    }
}
