//! GH005: public items in the library crates must carry doc comments.
//!
//! Covers `pub` fns (free and inherent-impl), structs, enums, traits,
//! mods, type aliases, consts, statics, and named struct fields. `pub use`
//! re-exports, `pub(crate)`/`pub(super)` items, trait-impl methods
//! (never `pub`), and test code are out of scope.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::model::FileModel;

/// The rule code.
pub const RULE: &str = "GH005";

/// Item keywords that may follow `pub` (after modifiers).
const ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "mod", "type", "const", "static", "union",
];

/// Runs GH005 over one file.
pub fn check(model: &FileModel, diags: &mut Vec<Diagnostic>) {
    let tokens = &model.tokens;
    for i in 0..tokens.len() {
        if tokens[i].kind != TokenKind::Ident || tokens[i].text != "pub" {
            continue;
        }
        // Restricted visibility (`pub(crate)` etc.) is not public API.
        if tokens.get(i + 1).map(|t| t.text.as_str()) == Some("(") {
            continue;
        }
        let line = tokens[i].line;
        if model.in_test_code(line) || model.in_macro_def(line) || model.is_allowed(RULE, line) {
            continue;
        }
        // Skip modifiers to find what is being made public.
        let mut j = i + 1;
        while j < tokens.len()
            && (matches!(
                tokens[j].text.as_str(),
                "const" | "async" | "unsafe" | "extern"
            ) || tokens[j].kind == TokenKind::Literal)
        {
            // `pub const NAME` vs `pub const fn`: only treat `const` as a
            // modifier when a `fn` eventually follows.
            if tokens[j].text == "const"
                && tokens.get(j + 1).map(|t| t.kind) == Some(TokenKind::Ident)
                && !matches!(tokens[j + 1].text.as_str(), "fn" | "unsafe" | "extern")
            {
                break;
            }
            j += 1;
        }
        let Some(kw) = tokens.get(j) else { continue };
        let (kind, name) = if ITEM_KEYWORDS.contains(&kw.text.as_str()) {
            let name = tokens
                .get(j + 1)
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.clone())
                .unwrap_or_else(|| "_".to_string());
            (kw.text.clone(), name)
        } else if kw.text == "use" {
            continue; // re-exports inherit their target's docs
        } else if kw.kind == TokenKind::Ident
            && tokens.get(j + 1).map(|t| t.text.as_str()) == Some(":")
            && tokens.get(j + 2).map(|t| t.text.as_str()) != Some(":")
        {
            // `pub name: Type` — a struct field.
            ("field".to_string(), kw.text.clone())
        } else {
            continue;
        };
        if model.has_doc(line) {
            continue;
        }
        diags.push(Diagnostic::new(
            RULE,
            &model.path,
            line,
            format!("missing doc comment on pub {kind} `{name}`"),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let model = FileModel::build("f.rs", src);
        let mut diags = Vec::new();
        check(&model, &mut diags);
        diags
    }

    #[test]
    fn fixture_fail_is_flagged() {
        let diags = run(include_str!("../../fixtures/gh005_fail.rs"));
        assert!(
            diags.len() >= 3,
            "expected struct/fn/field hits, got {diags:?}"
        );
        assert!(diags.iter().all(|d| d.rule == "GH005"));
    }

    #[test]
    fn fixture_pass_is_clean() {
        let diags = run(include_str!("../../fixtures/gh005_pass.rs"));
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn docs_through_attribute_chain_are_seen() {
        let src = "/// Documented.\n#[derive(Debug)]\n#[non_exhaustive]\npub struct A;\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn pub_use_and_restricted_visibility_are_exempt() {
        let src = "pub use crate::types::Watts;\npub(crate) struct Internal;\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn pub_const_item_vs_pub_const_fn() {
        let diags = run("pub const LIMIT: u32 = 4;\n/// Doc.\npub const fn f() {}\n");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("pub const `LIMIT`"));
    }
}
