//! GH007: no unordered-map iteration in reduction or telemetry paths.
//!
//! `HashMap`/`HashSet` iterate in `RandomState`-seeded order, different
//! every process. Any result that folds over such an iteration — a fleet
//! reduction, a ledger merge, a report row — can differ between two runs
//! of the same seeded scenario, breaking the bit-identical-replay
//! guarantee. Inside files tagged `Reduction` or `Telemetry` in the
//! [`DETERMINISM_DOMAINS`] table, iterating an unordered container is a
//! violation: use `BTreeMap`/`BTreeSet`, or collect and sort first.
//!
//! [`DETERMINISM_DOMAINS`]: crate::DETERMINISM_DOMAINS

use crate::diag::Diagnostic;
use crate::graph::SymbolGraph;
use crate::lexer::TokenKind;
use crate::model::FileModel;
use crate::rules::{forward_chain, receiver_chain};

/// The rule code.
pub const RULE: &str = "GH007";

/// Iteration methods whose order is the container's internal order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Runs GH007 over one domain-tagged file against the symbol graph.
pub fn check(model: &FileModel, graph: &SymbolGraph, diags: &mut Vec<Diagnostic>) {
    let tokens = &model.tokens;
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        // Pattern 1: `<chain>.iter()` and friends.
        if ITER_METHODS.contains(&t.text.as_str())
            && i > 0
            && tokens[i - 1].text == "."
            && tokens.get(i + 1).map(|n| n.text.as_str()) == Some("(")
        {
            let Some(chain) = receiver_chain(tokens, i - 1) else {
                continue;
            };
            flag_if_unordered(model, graph, &chain, i, t.line, &t.text, diags);
        }
        // Pattern 2: `for pat in <chain> {` — iterating the container
        // (or a reference to it) directly.
        if t.text == "in" && i > 0 {
            let mut j = i + 1;
            while tokens.get(j).map(|n| n.text.as_str()) == Some("&")
                || tokens.get(j).map(|n| n.text.as_str()) == Some("mut")
            {
                j += 1;
            }
            let (chain, after) = forward_chain(tokens, j);
            if chain.is_empty() || tokens.get(after).map(|n| n.text.as_str()) != Some("{") {
                continue;
            }
            let line = tokens[j].line;
            flag_if_unordered(model, graph, &chain, j, line, "for … in", diags);
        }
    }
}

/// Pushes a diagnostic when `chain` resolves to an unordered container
/// and the site is neither test code nor suppressed.
fn flag_if_unordered(
    model: &FileModel,
    graph: &SymbolGraph,
    chain: &[String],
    at: usize,
    line: u32,
    how: &str,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(type_base) = graph.resolve_chain(model, chain, at) else {
        return;
    };
    if !SymbolGraph::is_unordered_type(&type_base) {
        return;
    }
    if model.in_test_code(line) || model.is_allowed(RULE, line) {
        return;
    }
    diags.push(Diagnostic::new(
        RULE,
        &model.path,
        line,
        format!(
            "`{}` iterates a `{}` (`{}`) in a determinism-tagged path; its order is seeded per-process — use `BTreeMap`/`BTreeSet` or sort the keys first",
            how,
            type_base,
            chain.join(".")
        ),
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
        let models: Vec<FileModel> = sources
            .iter()
            .map(|(p, s)| FileModel::build(p, s))
            .collect();
        let graph = SymbolGraph::build(&models);
        let mut diags = Vec::new();
        for m in &models {
            check(m, &graph, &mut diags);
        }
        diags
    }

    #[test]
    fn fixture_fail_is_flagged() {
        let diags = run(&[(
            "crates/sim/src/fleet.rs",
            include_str!("../../fixtures/gh007_fail.rs"),
        )]);
        assert!(
            diags.len() >= 3,
            "expected the for-in, .values(), and .iter() sites, got {diags:?}"
        );
        assert!(diags.iter().all(|d| d.rule == RULE));
    }

    #[test]
    fn fixture_pass_is_clean() {
        let diags = run(&[(
            "crates/sim/src/fleet.rs",
            include_str!("../../fixtures/gh007_pass.rs"),
        )]);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn cross_file_field_resolution_flags_remote_iteration() {
        // The HashMap field is declared in one file, iterated in another.
        let diags = run(&[
            (
                "crates/core/src/database/store.rs",
                "pub struct Db { entries: HashMap<u64, f64> }\n",
            ),
            (
                "crates/core/src/database/mod.rs",
                "impl Db {\n    pub fn rows(&self) -> usize { self.entries.values().count() }\n}\n",
            ),
        ]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].file, "crates/core/src/database/mod.rs");
    }

    #[test]
    fn btree_iteration_is_clean() {
        let diags = run(&[(
            "crates/sim/src/fleet.rs",
            "pub struct Db { entries: BTreeMap<u64, f64> }\nimpl Db {\n    pub fn rows(&self) -> usize { self.entries.values().count() }\n}\n",
        )]);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn test_code_and_allows_are_exempt() {
        let diags = run(&[(
            "crates/sim/src/fleet.rs",
            "pub struct Db { entries: HashMap<u64, f64> }\n\
             impl Db {\n\
                 // greenhetero-lint: allow(GH007) order irrelevant: result is a count\n\
                 pub fn rows(&self) -> usize { self.entries.values().count() }\n\
             }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn f(d: &Db) { for _ in &d.entries { } }\n\
             }\n",
        )]);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }
}
