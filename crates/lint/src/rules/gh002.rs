//! GH002: no bare `f64`/`f32` parameters or returns in public APIs of the
//! dimensional crates (`greenhetero-core`, `greenhetero-power`).
//!
//! A `Watts` mistaken for a `Ratio` is the class of bug the newtype layer
//! exists to prevent; a pub fn trafficking in raw floats re-opens the
//! hole. Exempt:
//!
//! - inherent impls on the unit newtypes themselves (the constructor /
//!   accessor boundary, e.g. `Watts::new(f64)` / `Watts::value() -> f64`),
//! - trait-impl methods (their signatures are fixed by the trait),
//! - sites carrying `// greenhetero-lint: allow(GH002) <reason>` for APIs
//!   that are genuinely dimensionless (fit coefficients, smoothing
//!   factors, …).

use crate::diag::Diagnostic;
use crate::dimensions::is_unit_newtype;
use crate::lexer::TokenKind;
use crate::model::FileModel;
use crate::rules::find_fns;

/// The rule code.
pub const RULE: &str = "GH002";

/// Runs GH002 over one file.
pub fn check(model: &FileModel, diags: &mut Vec<Diagnostic>) {
    let tokens = &model.tokens;
    for sig in find_fns(model) {
        // Public directly, or a method of a `pub trait` declaration.
        let in_pub_trait = model
            .trait_at(sig.fn_idx)
            .is_some_and(|t| t.is_pub && model.impl_at(sig.fn_idx).is_none());
        if !sig.is_pub && !in_pub_trait {
            continue;
        }
        if model.in_test_code(sig.line)
            || model.in_macro_def(sig.line)
            || model.is_allowed(RULE, sig.line)
        {
            continue;
        }
        if let Some(block) = model.impl_at(sig.fn_idx) {
            // The newtype boundary itself: raw floats are the point.
            if block.trait_name.is_none() && is_unit_newtype(&block.target) {
                continue;
            }
            // Trait impls don't own their signatures.
            if block.trait_name.is_some() {
                continue;
            }
        }
        let bare_float = |range: std::ops::Range<usize>| {
            tokens[range]
                .iter()
                .find(|t| t.kind == TokenKind::Ident && (t.text == "f64" || t.text == "f32"))
                .map(|t| t.text.clone())
        };
        let in_params = bare_float(sig.params.clone());
        let in_ret = bare_float(sig.ret.clone());
        let (Some(float), position) = (match (&in_params, &in_ret) {
            (Some(f), _) => (Some(f.clone()), "parameter of"),
            (None, Some(f)) => (Some(f.clone()), "return type of"),
            (None, None) => (None, ""),
        }) else {
            continue;
        };
        diags.push(Diagnostic::new(
            RULE,
            &model.path,
            sig.line,
            format!(
                "bare `{float}` in {position} pub fn `{name}`; use a unit newtype (`Watts`, `Ratio`, …) or justify with `greenhetero-lint: allow(GH002) <reason>`",
                name = sig.name
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let model = FileModel::build("f.rs", src);
        let mut diags = Vec::new();
        check(&model, &mut diags);
        diags
    }

    #[test]
    fn fixture_fail_is_flagged() {
        let diags = run(include_str!("../../fixtures/gh002_fail.rs"));
        assert!(
            diags.len() >= 2,
            "expected param + return hits, got {diags:?}"
        );
        assert!(diags.iter().all(|d| d.rule == "GH002"));
    }

    #[test]
    fn fixture_pass_is_clean() {
        let diags = run(include_str!("../../fixtures/gh002_pass.rs"));
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn newtype_inherent_impls_are_exempt() {
        let src = "pub struct Watts(f64);\nimpl Watts {\n pub fn new(raw: f64) -> Watts { Watts(raw) }\n pub fn value(&self) -> f64 { self.0 }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn private_and_crate_fns_are_exempt() {
        let src = "fn go(x: f64) -> f64 { x }\npub(crate) fn half(x: f64) -> f64 { x }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn pub_trait_methods_are_checked() {
        let src = "pub trait Predictor {\n fn observe(&mut self, v: f64);\n}\n";
        assert_eq!(run(src).len(), 1);
    }
}
