//! GH008: no accumulation through clamping newtypes.
//!
//! `Ratio::saturating` clamps its argument into `[0, 1]`. Accumulating a
//! sum *through* the newtype — `acc = Ratio::saturating(acc.value() + x)`
//! — silently saturates every partial sum, so a fleet mean SoC computed
//! that way reports `min(sum, 1) / n`. That exact bug shipped in the PR 5
//! fleet substrate and survived until review caught it. The blessed
//! pattern accumulates in plain `f64` and clamps **once** at the end;
//! this rule bans the four accumulation shapes that route partial sums
//! through a clamping constructor:
//!
//! 1. read-modify-write: `lhs = Ratio::…( … lhs … )`
//! 2. `fold` seeded with a clamping newtype: `.fold(Ratio::…, …)`
//! 3. `sum` collected into one: `.sum::<Ratio>()`
//! 4. `+=` on a binding or field of clamping type

use crate::diag::Diagnostic;
use crate::graph::{SymbolGraph, CLAMPING_NEWTYPES};
use crate::lexer::{Token, TokenKind};
use crate::model::FileModel;

/// The rule code.
pub const RULE: &str = "GH008";

/// Runs GH008 over one library file against the symbol graph.
pub fn check(model: &FileModel, graph: &SymbolGraph, diags: &mut Vec<Diagnostic>) {
    let tokens = &model.tokens;
    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokenKind::Ident if CLAMPING_NEWTYPES.contains(&t.text.as_str()) => {
                check_rmw(model, i, diags);
            }
            TokenKind::Ident if t.text == "fold" => check_fold(model, i, diags),
            TokenKind::Ident if t.text == "sum" => check_sum(model, i, diags),
            TokenKind::Punct if t.text == "+" => check_add_assign(model, graph, i, diags),
            _ => {}
        }
    }
}

/// Shape 1: `lhs = Clamp::ctor( … lhs … )` — the assigned place feeds
/// back into the clamping constructor's arguments.
fn check_rmw(model: &FileModel, i: usize, diags: &mut Vec<Diagnostic>) {
    let tokens = &model.tokens;
    // Must be `= Clamp :: ctor (` with a plain assignment before it.
    if i < 2 || tokens[i - 1].text != "=" {
        return;
    }
    // Exclude compound/comparison operators (`+=`, `==`, `<=`, …): their
    // token before the `=` is another punctuation character.
    if tokens[i - 2].kind == TokenKind::Punct {
        return;
    }
    if tokens.get(i + 1).map(|t| t.text.as_str()) != Some(":")
        || tokens.get(i + 2).map(|t| t.text.as_str()) != Some(":")
        || tokens.get(i + 3).map(|t| t.kind) != Some(TokenKind::Ident)
        || tokens.get(i + 4).map(|t| t.text.as_str()) != Some("(")
    {
        return;
    }
    // The assigned chain: walk back from the identifier before `=`.
    let lhs_end = i - 2;
    let Some(lhs_start) = token_chain_start(tokens, lhs_end) else {
        return;
    };
    if tokens
        .get(lhs_start.wrapping_sub(1))
        .map(|t| t.text.as_str())
        == Some("let")
    {
        return; // initialization, not read-modify-write
    }
    let chain: Vec<&str> = (lhs_start..=lhs_end)
        .filter(|&k| tokens[k].kind == TokenKind::Ident)
        .map(|k| tokens[k].text.as_str())
        .collect();
    // Scan the constructor's balanced argument list for the same chain.
    let open = i + 4;
    let mut depth = 0i64;
    let mut j = open;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        if depth >= 1 && chain_matches_at(tokens, j, &chain) {
            let line = tokens[i].line;
            if !model.in_test_code(line) && !model.is_allowed(RULE, line) {
                diags.push(Diagnostic::new(
                    RULE,
                    &model.path,
                    line,
                    format!(
                        "`{lhs} = {clamp}::…({lhs}…)` accumulates through the clamping `{clamp}` constructor, saturating partial sums; accumulate in plain f64 and clamp once at the end",
                        lhs = chain.join("."),
                        clamp = tokens[i].text,
                    ),
                ));
            }
            return;
        }
        j += 1;
    }
}

/// The token index where the dotted chain ending at `end` begins
/// (`self . mean_soc` ending at `mean_soc` → index of `self`), or `None`
/// when `end` is not an identifier.
fn token_chain_start(tokens: &[Token], end: usize) -> Option<usize> {
    if tokens.get(end).map(|t| t.kind) != Some(TokenKind::Ident) {
        return None;
    }
    let mut s = end;
    while s >= 2 && tokens[s - 1].text == "." && tokens[s - 2].kind == TokenKind::Ident {
        s -= 2;
    }
    Some(s)
}

/// `true` when the token sequence `a . b . c` matching `chain` starts at
/// index `j` (and is not a suffix of a longer chain).
fn chain_matches_at(tokens: &[Token], j: usize, chain: &[&str]) -> bool {
    if j > 0 && tokens[j - 1].text == "." {
        return false;
    }
    let mut k = j;
    for (n, part) in chain.iter().enumerate() {
        if tokens.get(k).map(|t| t.text.as_str()) != Some(*part) {
            return false;
        }
        if n + 1 < chain.len() {
            if tokens.get(k + 1).map(|t| t.text.as_str()) != Some(".") {
                return false;
            }
            k += 2;
        }
    }
    true
}

/// Shape 2: `.fold(Clamp::…, …)` — the accumulator is born clamped, so
/// every intermediate combine saturates.
fn check_fold(model: &FileModel, i: usize, diags: &mut Vec<Diagnostic>) {
    let tokens = &model.tokens;
    if i == 0 || tokens[i - 1].text != "." {
        return;
    }
    if tokens.get(i + 1).map(|t| t.text.as_str()) != Some("(") {
        return;
    }
    let Some(init) = tokens.get(i + 2) else {
        return;
    };
    if init.kind != TokenKind::Ident || !CLAMPING_NEWTYPES.contains(&init.text.as_str()) {
        return;
    }
    let line = tokens[i].line;
    if model.in_test_code(line) || model.is_allowed(RULE, line) {
        return;
    }
    diags.push(Diagnostic::new(
        RULE,
        &model.path,
        line,
        format!(
            "`.fold({}::…, …)` accumulates through a clamping newtype, saturating partial sums; fold in plain f64 and clamp once at the end",
            init.text
        ),
    ));
}

/// Shape 3: `.sum::<Clamp>()`.
fn check_sum(model: &FileModel, i: usize, diags: &mut Vec<Diagnostic>) {
    let tokens = &model.tokens;
    if i == 0 || tokens[i - 1].text != "." {
        return;
    }
    if tokens.get(i + 1).map(|t| t.text.as_str()) != Some(":")
        || tokens.get(i + 2).map(|t| t.text.as_str()) != Some(":")
        || tokens.get(i + 3).map(|t| t.text.as_str()) != Some("<")
    {
        return;
    }
    let Some(ty) = tokens.get(i + 4) else {
        return;
    };
    if ty.kind != TokenKind::Ident || !CLAMPING_NEWTYPES.contains(&ty.text.as_str()) {
        return;
    }
    let line = tokens[i].line;
    if model.in_test_code(line) || model.is_allowed(RULE, line) {
        return;
    }
    diags.push(Diagnostic::new(
        RULE,
        &model.path,
        line,
        format!(
            "`.sum::<{}>()` accumulates through a clamping newtype, saturating partial sums; sum in plain f64 and clamp once at the end",
            ty.text
        ),
    ));
}

/// Shape 4: `chain += …` where the chain resolves to a clamping type.
fn check_add_assign(model: &FileModel, graph: &SymbolGraph, i: usize, diags: &mut Vec<Diagnostic>) {
    let tokens = &model.tokens;
    if tokens.get(i + 1).map(|t| t.text.as_str()) != Some("=") {
        return;
    }
    let Some(lhs_start) = (i >= 1).then(|| token_chain_start(tokens, i - 1)).flatten() else {
        return;
    };
    let chain: Vec<String> = (lhs_start..i)
        .filter(|&k| tokens[k].kind == TokenKind::Ident)
        .map(|k| tokens[k].text.clone())
        .collect();
    let Some(type_base) = graph.resolve_chain(model, &chain, i) else {
        return;
    };
    if !CLAMPING_NEWTYPES.contains(&type_base.as_str()) {
        return;
    }
    let line = tokens[i].line;
    if model.in_test_code(line) || model.is_allowed(RULE, line) {
        return;
    }
    diags.push(Diagnostic::new(
        RULE,
        &model.path,
        line,
        format!(
            "`{} += …` accumulates in the clamping newtype `{}`; accumulate in plain f64 and clamp once at the end",
            chain.join("."),
            type_base
        ),
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
        let models: Vec<FileModel> = sources
            .iter()
            .map(|(p, s)| FileModel::build(p, s))
            .collect();
        let graph = SymbolGraph::build(&models);
        let mut diags = Vec::new();
        for m in &models {
            check(m, &graph, &mut diags);
        }
        diags
    }

    #[test]
    fn fixture_fail_is_flagged() {
        let diags = run(&[(
            "crates/sim/src/fleet.rs",
            include_str!("../../fixtures/gh008_fail.rs"),
        )]);
        assert!(
            diags.len() >= 4,
            "expected RMW, fold, sum, and += sites, got {diags:?}"
        );
        assert!(diags.iter().all(|d| d.rule == RULE));
    }

    #[test]
    fn fixture_pass_is_clean() {
        let diags = run(&[(
            "crates/sim/src/fleet.rs",
            include_str!("../../fixtures/gh008_pass.rs"),
        )]);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn the_pr5_mean_soc_pattern_is_caught() {
        // The exact shape the PR 5 review found in fleet.rs.
        let diags = run(&[(
            "crates/sim/src/fleet.rs",
            "impl FleetAccumulator {\n    fn absorb(&mut self, e: &EpochRecord) {\n        self.mean_soc = Ratio::saturating(self.mean_soc.value() + e.soc.value());\n    }\n}\n",
        )]);
        assert_eq!(diags.len(), 1, "got {diags:?}");
        assert!(diags[0].message.contains("self.mean_soc"));
    }

    #[test]
    fn single_final_clamp_is_the_blessed_pattern() {
        let diags = run(&[(
            "crates/sim/src/fleet.rs",
            "impl FleetAccumulator {\n    fn reduce(&mut self, soc_sum: f64, n: f64) {\n        self.mean_soc = Ratio::saturating(soc_sum / n);\n    }\n}\n",
        )]);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn let_initialization_is_not_rmw() {
        let diags = run(&[(
            "crates/sim/src/fleet.rs",
            "fn f(soc: f64) -> Ratio { let soc = Ratio::saturating(soc); soc }\n",
        )]);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn add_assign_on_clamping_local_is_flagged() {
        let diags = run(&[(
            "crates/sim/src/fleet.rs",
            "fn f(step: Ratio) {\n    let mut acc = Ratio::saturating(0.0);\n    acc += step;\n}\n",
        )]);
        assert_eq!(diags.len(), 1, "got {diags:?}");
        assert!(diags[0].message.contains("acc"));
    }

    #[test]
    fn plain_f64_add_assign_is_clean() {
        let diags = run(&[(
            "crates/sim/src/fleet.rs",
            "fn f(xs: &[f64]) -> f64 {\n    let mut sum = 0.0;\n    for x in xs { sum += x; }\n    sum\n}\n",
        )]);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }
}
