//! The GH001–GH012 rule implementations plus shared signature parsing.

pub mod gh001;
pub mod gh002;
pub mod gh003;
pub mod gh004;
pub mod gh005;
pub mod gh006;
pub mod gh007;
pub mod gh008;
pub mod gh009;
pub mod gh010;
pub mod gh011;
pub mod gh012;

use std::ops::Range;

use crate::lexer::{Token, TokenKind};
use crate::model::FileModel;

/// A parsed `fn` signature.
#[derive(Debug)]
pub struct FnSig {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub fn_idx: usize,
    /// `true` when declared `pub` without a visibility restriction.
    pub is_pub: bool,
    /// Token indices of the parameter list (between the parentheses).
    pub params: Range<usize>,
    /// Token indices of the return type (after `->`, empty when absent).
    pub ret: Range<usize>,
}

/// Modifier keywords that may sit between `pub` and `fn`.
fn is_fn_modifier(t: &Token) -> bool {
    matches!(t.text.as_str(), "const" | "async" | "unsafe" | "extern")
        || t.kind == TokenKind::Literal
}

/// Skips a balanced `<...>` group starting at `i` (which must point at
/// `<`), returning the index just past the matching `>`.
fn skip_angles(tokens: &[Token], mut i: usize) -> usize {
    let mut depth = 0i64;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Parses every `fn` signature in the file.
#[must_use]
pub fn find_fns(model: &FileModel) -> Vec<FnSig> {
    let tokens = &model.tokens;
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].kind != TokenKind::Ident || tokens[i].text != "fn" {
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            continue;
        };
        // `fn(` is a function-pointer type, not a declaration.
        if name_tok.kind != TokenKind::Ident {
            continue;
        }
        // Direct visibility: walk back over modifiers to a possible `pub`.
        let mut j = i;
        while j > 0 && is_fn_modifier(&tokens[j - 1]) {
            j -= 1;
        }
        let is_pub = j > 0
            && tokens[j - 1].text == "pub"
            && tokens.get(j).map(|t| t.text.as_str()) != Some("(");

        // Parameter list: after the name and optional generics.
        let mut k = i + 2;
        if tokens.get(k).map(|t| t.text.as_str()) == Some("<") {
            k = skip_angles(tokens, k);
        }
        if tokens.get(k).map(|t| t.text.as_str()) != Some("(") {
            continue;
        }
        let params_start = k + 1;
        let mut depth = 0i64;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let params_end = k.min(tokens.len());
        // Return type: between `->` and the body / `;` / `where`.
        let mut ret = params_end..params_end;
        let mut m = params_end + 1;
        if tokens.get(m).map(|t| t.text.as_str()) == Some("-")
            && tokens.get(m + 1).map(|t| t.text.as_str()) == Some(">")
        {
            m += 2;
            let ret_start = m;
            let mut nest = 0i64;
            while m < tokens.len() {
                match tokens[m].text.as_str() {
                    "(" | "[" => nest += 1,
                    ")" | "]" => nest -= 1,
                    "{" | ";" if nest == 0 => break,
                    "where" if nest == 0 && tokens[m].kind == TokenKind::Ident => break,
                    _ => {}
                }
                m += 1;
            }
            ret = ret_start..m;
        }
        out.push(FnSig {
            name: name_tok.text.clone(),
            line: tokens[i].line,
            fn_idx: i,
            is_pub,
            params: params_start..params_end,
            ret,
        });
    }
    out
}

/// Walks backward from `dot_idx` (which must point at the `.` before a
/// method name) and collects the dotted identifier chain of the receiver:
/// `self.fleet.entries.iter()` → `["self", "fleet", "entries"]`.
///
/// Returns `None` when the receiver is dynamic — a call or index result
/// (`f().iter()`, `v[0].iter()`) — since no name-based resolution can say
/// what type that expression has.
#[must_use]
pub fn receiver_chain(tokens: &[Token], dot_idx: usize) -> Option<Vec<String>> {
    let mut chain = Vec::new();
    let mut d = dot_idx;
    loop {
        if tokens.get(d).map(|t| t.text.as_str()) != Some(".") || d == 0 {
            return None;
        }
        let prev = &tokens[d - 1];
        if prev.kind != TokenKind::Ident {
            // `)`/`]`/literal receiver: dynamic, unresolvable by name.
            return None;
        }
        chain.push(prev.text.clone());
        if d >= 3 && tokens[d - 2].text == "." && tokens[d - 3].kind == TokenKind::Ident {
            d -= 2;
        } else {
            break;
        }
    }
    chain.reverse();
    Some(chain)
}

/// Reads a dotted identifier chain forward from `start`:
/// `self . entries` → (`["self", "entries"]`, index just past the chain).
/// Returns an empty chain when `start` is not an identifier.
#[must_use]
pub fn forward_chain(tokens: &[Token], start: usize) -> (Vec<String>, usize) {
    let mut chain = Vec::new();
    let mut i = start;
    while let Some(t) = tokens.get(i) {
        if t.kind != TokenKind::Ident {
            break;
        }
        chain.push(t.text.clone());
        if tokens.get(i + 1).map(|n| n.text.as_str()) == Some(".")
            && tokens
                .get(i + 2)
                .is_some_and(|n| n.kind == TokenKind::Ident)
        {
            i += 2;
        } else {
            i += 1;
            break;
        }
    }
    (chain, i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receiver_chains_walk_back_through_fields() {
        let m = FileModel::build("x.rs", "fn f() { self.fleet.entries.iter(); }");
        let dot = m
            .tokens
            .iter()
            .position(|t| t.text == "iter")
            .map(|i| i - 1)
            .expect("iter token");
        assert_eq!(
            receiver_chain(&m.tokens, dot),
            Some(vec![
                "self".to_string(),
                "fleet".to_string(),
                "entries".to_string()
            ])
        );
    }

    #[test]
    fn dynamic_receivers_are_unresolvable() {
        let m = FileModel::build("x.rs", "fn f() { g().iter(); v[0].keys(); }");
        for method in ["iter", "keys"] {
            let dot = m
                .tokens
                .iter()
                .position(|t| t.text == method)
                .map(|i| i - 1)
                .expect("method token");
            assert_eq!(receiver_chain(&m.tokens, dot), None, "{method}");
        }
    }

    #[test]
    fn forward_chains_stop_at_non_idents() {
        let m = FileModel::build("x.rs", "for (k, v) in self.entries { }");
        let start = m
            .tokens
            .iter()
            .position(|t| t.text == "self")
            .expect("self token");
        let (chain, after) = forward_chain(&m.tokens, start);
        assert_eq!(chain, vec!["self".to_string(), "entries".to_string()]);
        assert_eq!(m.tokens[after].text, "{");
    }

    #[test]
    fn parses_pub_fn_with_generics_and_return() {
        let m = FileModel::build(
            "x.rs",
            "pub fn solve<T: Clone>(budget: Watts, shares: &[Ratio]) -> Result<Allocation, CoreError> {\n}\npub(crate) fn helper(x: f64) {}\nfn private(y: f64) -> f64 { y }\n",
        );
        let fns = find_fns(&m);
        assert_eq!(fns.len(), 3);
        assert!(fns[0].is_pub);
        assert_eq!(fns[0].name, "solve");
        assert!(!fns[0].params.is_empty());
        assert!(!fns[0].ret.is_empty());
        assert!(!fns[1].is_pub, "pub(crate) is not public API");
        assert!(!fns[2].is_pub);
        assert_eq!(fns[2].ret.len(), 1);
    }

    #[test]
    fn const_unsafe_modifiers_do_not_hide_pub() {
        let m = FileModel::build("x.rs", "pub const unsafe fn f() {}\n");
        let fns = find_fns(&m);
        assert_eq!(fns.len(), 1);
        assert!(fns[0].is_pub);
    }
}
