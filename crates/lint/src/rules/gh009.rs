//! GH009: metric-name coherence between code and the `names` catalog.
//!
//! Every counter/gauge/histogram name registered from a string literal
//! must exist in the `telemetry::names` catalog, and every catalog
//! constant must have a live use somewhere in the tree. Drift in either
//! direction is how dashboards silently go dark: a renamed metric keeps
//! emitting under the old name, or a catalog entry documents a series
//! nobody produces. The full drift inventory (both directions, including
//! suppressed entries) also lands in the `--format json` report.

use crate::diag::Diagnostic;
use crate::graph::SymbolGraph;
use crate::model::FileModel;

/// The rule code.
pub const RULE: &str = "GH009";

/// Runs GH009 across the whole workspace against the symbol graph.
///
/// `in_scope` selects the files whose literal registrations are audited
/// (the library crates); catalog liveness is always workspace-wide.
pub fn check(
    models: &[FileModel],
    graph: &SymbolGraph,
    in_scope: impl Fn(&str) -> bool,
    diags: &mut Vec<Diagnostic>,
) {
    let model_for = |path: &str| models.iter().find(|m| m.path == path);
    // Direction 1: literals registered in code but missing from the
    // catalog.
    for lit in &graph.metric_literals {
        if !in_scope(&lit.file) || graph.catalog_values.contains(&lit.metric) {
            continue;
        }
        if model_for(&lit.file).is_some_and(|m| m.is_allowed(RULE, lit.line)) {
            continue;
        }
        diags.push(Diagnostic::new(
            RULE,
            &lit.file,
            lit.line,
            format!(
                "metric name \"{}\" passed to `.{}()` is not in the `telemetry::names` catalog; add a documented constant and register through it",
                lit.metric, lit.method
            ),
        ));
    }
    // Direction 2: catalog constants with no live use anywhere.
    for entry in &graph.catalog {
        if !in_scope(&entry.file) {
            continue;
        }
        if graph
            .catalog_uses
            .get(&entry.const_name)
            .copied()
            .unwrap_or(0)
            > 0
        {
            continue;
        }
        if model_for(&entry.file).is_some_and(|m| m.is_allowed(RULE, entry.line)) {
            continue;
        }
        diags.push(Diagnostic::new(
            RULE,
            &entry.file,
            entry.line,
            format!(
                "catalog constant `{}` (\"{}\") has no live use; wire it into a registration or remove it from the catalog",
                entry.const_name, entry.metric
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
        let models: Vec<FileModel> = sources
            .iter()
            .map(|(p, s)| FileModel::build(p, s))
            .collect();
        let graph = SymbolGraph::build(&models);
        let mut diags = Vec::new();
        check(&models, &graph, |p| p.starts_with("crates/"), &mut diags);
        diags
    }

    #[test]
    fn fixture_fail_is_flagged() {
        let diags = run(&[(
            "crates/core/src/telemetry/mod.rs",
            include_str!("../../fixtures/gh009_fail.rs"),
        )]);
        assert_eq!(diags.len(), 2, "orphan const + rogue literal: {diags:?}");
        assert!(diags.iter().any(|d| d.message.contains("ORPHAN")));
        assert!(diags.iter().any(|d| d.message.contains("gh_rogue_total")));
    }

    #[test]
    fn fixture_pass_is_clean() {
        let diags = run(&[(
            "crates/core/src/telemetry/mod.rs",
            include_str!("../../fixtures/gh009_pass.rs"),
        )]);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn cross_file_use_keeps_a_constant_alive() {
        let diags = run(&[
            (
                "crates/core/src/telemetry/mod.rs",
                "pub mod names { pub const A: &str = \"gh_a_total\"; }\n",
            ),
            (
                "crates/sim/src/engine.rs",
                "fn wire(r: &Registry) { r.counter(names::A); }\n",
            ),
        ]);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn allowed_orphans_are_suppressed() {
        let diags = run(&[(
            "crates/core/src/telemetry/mod.rs",
            "pub mod names {\n    // greenhetero-lint: allow(GH009) read through an external stats hook, never registered\n    pub const EXTERNAL: &str = \"gh_external_total\";\n}\n",
        )]);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn literal_registration_of_a_cataloged_name_is_coherent() {
        // Registering by literal is allowed as long as the name is in the
        // catalog — the literal keeps the constant alive, too.
        let diags = run(&[
            (
                "crates/core/src/telemetry/mod.rs",
                "pub mod names { pub const A: &str = \"gh_a_total\"; }\n",
            ),
            (
                "crates/sim/src/engine.rs",
                "fn wire(r: &Registry) { r.counter(\"gh_a_total\"); }\n",
            ),
        ]);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }
}
