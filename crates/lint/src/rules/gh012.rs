//! GH012: no direct thread spawning outside the scheduler allowlist.
//!
//! The work-stealing pool (DESIGN.md §15) is the codebase's one source
//! of execution parallelism: serve sessions and fleet shards are
//! poll-able tasks on a bounded worker set, so the process thread count
//! is a structural invariant (`workers + fixed supervision overhead`)
//! rather than a function of load. A stray `thread::spawn` reintroduces
//! thread-per-work-item scaling behind the pool's back and silently
//! voids the thread-budget gates in `BENCH_fleet.json`. The rule bans
//! `thread::spawn`, `thread::Builder`, `thread::scope`, and
//! `scope.spawn(..)` in crate library code everywhere except the files
//! named by [`is_thread_spawn_site`] — the pool itself, the sharded
//! runner, and the supervisor/daemon threads that *are* the fixed
//! overhead.
//!
//! [`is_thread_spawn_site`]: crate::is_thread_spawn_site

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::model::FileModel;

/// The rule code.
pub const RULE: &str = "GH012";

/// Runs GH012 over one crate source file outside the spawn allowlist.
pub fn check(model: &FileModel, diags: &mut Vec<Diagnostic>) {
    let tokens = &model.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let path_sep = tokens.get(i + 1).map(|n| n.text.as_str()) == Some(":")
            && tokens.get(i + 2).map(|n| n.text.as_str()) == Some(":");
        let what = match t.text.as_str() {
            // `thread::spawn` / `thread::Builder` / `thread::scope`,
            // however the path is qualified (`std::thread::…` lexes to
            // the same `thread :: ident` tail).
            "thread" if path_sep => match tokens.get(i + 3).map(|n| n.text.as_str()) {
                Some("spawn") => "`thread::spawn`",
                Some("Builder") => "`thread::Builder`",
                Some("scope") => "`thread::scope`",
                _ => continue,
            },
            // `scope.spawn(..)` inside a `thread::scope` body — the
            // scope handle is named `scope` everywhere in this codebase,
            // and the `thread::scope` call itself is flagged regardless.
            "scope"
                if tokens.get(i + 1).map(|n| n.text.as_str()) == Some(".")
                    && tokens.get(i + 2).map(|n| n.text.as_str()) == Some("spawn")
                    && tokens.get(i + 3).map(|n| n.text.as_str()) == Some("(") =>
            {
                "`scope.spawn(..)`"
            }
            _ => continue,
        };
        if model.in_test_code(t.line) || model.is_allowed(RULE, t.line) {
            continue;
        }
        diags.push(Diagnostic::new(
            RULE,
            &model.path,
            t.line,
            format!(
                "{what} creates an OS thread outside the scheduler allowlist, breaking the bounded-pool thread budget; submit a task to the work-stealing pool (`sched::TaskPool`) instead"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let model = FileModel::build(path, src);
        let mut diags = Vec::new();
        check(&model, &mut diags);
        diags
    }

    #[test]
    fn fixture_fail_is_flagged() {
        let diags = run(
            "crates/serve/src/session.rs",
            include_str!("../../fixtures/gh012_fail.rs"),
        );
        assert!(
            diags.len() >= 4,
            "expected spawn, Builder, scope, and scope.spawn hits: {diags:?}"
        );
        assert!(diags.iter().all(|d| d.rule == RULE));
    }

    #[test]
    fn fixture_pass_is_clean() {
        let diags = run(
            "crates/serve/src/session.rs",
            include_str!("../../fixtures/gh012_pass.rs"),
        );
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn qualified_paths_are_caught() {
        let diags = run(
            "crates/core/src/controller.rs",
            "fn f() { let h = std::thread::spawn(|| ()); h.join().ok(); }\n",
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("`thread::spawn`"), "{diags:?}");
    }

    #[test]
    fn other_spawn_methods_are_not_flagged() {
        // The pool's own submit API and non-scope receivers stay clean.
        let diags = run(
            "crates/sim/src/fleet.rs",
            "fn f(pool: &TaskPool) { pool.spawn(Box::new(task)); self.pool.spawn(t); }\n",
        );
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn test_code_and_allows_are_exempt() {
        let diags = run(
            "crates/serve/src/client.rs",
            "// greenhetero-lint: allow(GH012) one-shot helper thread in a doc example\nfn f() { std::thread::spawn(|| ()); }\n#[cfg(test)]\nmod tests {\n    fn g() { std::thread::spawn(|| ()); }\n}\n",
        );
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }
}
