//! GH004: every variant of `CoreError` (and any sibling `*Error` enum in
//! the library crates) must be constructed somewhere outside its own
//! definition.
//!
//! An error variant nobody builds is dead API surface: callers write
//! `match` arms for a case that cannot happen, and the real failure it was
//! meant to represent is being swallowed somewhere else. Matching a
//! variant in a pattern does not count as construction.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::model::FileModel;

/// The rule code.
pub const RULE: &str = "GH004";

/// One `*Error` enum definition.
#[derive(Debug)]
struct ErrorEnum {
    name: String,
    file: String,
    /// Inclusive line span of the definition (attributes not included).
    span: (u32, u32),
    /// Variant name and declaration line.
    variants: Vec<(String, u32)>,
}

/// Runs GH004 across the whole workspace.
///
/// `defines` selects which files may *define* audited enums (the library
/// crates); usages are searched in every scanned file.
pub fn check(models: &[FileModel], defines: impl Fn(&str) -> bool, diags: &mut Vec<Diagnostic>) {
    let mut enums = Vec::new();
    for model in models {
        if defines(&model.path) {
            collect_error_enums(model, &mut enums);
        }
    }
    for e in &enums {
        for (variant, line) in &e.variants {
            let constructed = models.iter().any(|m| {
                find_constructions(m, &e.name, variant)
                    .iter()
                    .any(|&l| m.path != e.file || !(e.span.0..=e.span.1).contains(&l))
            });
            if constructed {
                continue;
            }
            let def_model = models.iter().find(|m| m.path == e.file);
            if def_model.is_some_and(|m| m.is_allowed(RULE, *line)) {
                continue;
            }
            diags.push(Diagnostic::new(
                RULE,
                &e.file,
                *line,
                format!(
                    "variant `{}::{}` is never constructed outside its definition; wire it into a failure path or remove it",
                    e.name, variant
                ),
            ));
        }
    }
}

/// Collects `enum *Error` definitions with their variants.
fn collect_error_enums(model: &FileModel, out: &mut Vec<ErrorEnum>) {
    let tokens = &model.tokens;
    for i in 0..tokens.len() {
        if tokens[i].kind != TokenKind::Ident || tokens[i].text != "enum" {
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokenKind::Ident || !name_tok.text.ends_with("Error") {
            continue;
        }
        // Find the body braces.
        let mut k = i + 2;
        while k < tokens.len() && tokens[k].text != "{" && tokens[k].text != ";" {
            k += 1;
        }
        if tokens.get(k).map(|t| t.text.as_str()) != Some("{") {
            continue;
        }
        let close = crate::model::matching_brace(tokens, k);
        let mut variants = Vec::new();
        // Variants are identifiers at brace depth 1 / paren depth 0 in
        // "variant position": first in the body, or right after a `,`.
        let mut depth = 0i64;
        let mut nest = 0i64;
        let mut at_variant_position = true;
        let mut j = k;
        while j <= close {
            let t = &tokens[j];
            match t.text.as_str() {
                "{" => {
                    depth += 1;
                    at_variant_position = depth == 1;
                }
                "}" => {
                    depth -= 1;
                    at_variant_position = false;
                }
                "(" | "[" => nest += 1,
                ")" | "]" => nest -= 1,
                "," if depth == 1 && nest == 0 => at_variant_position = true,
                "#" if depth == 1 && nest == 0 => {} // attribute on a variant
                _ => {
                    if at_variant_position && depth == 1 && nest == 0 && t.kind == TokenKind::Ident
                    {
                        variants.push((t.text.clone(), t.line));
                        at_variant_position = false;
                    }
                }
            }
            j += 1;
        }
        out.push(ErrorEnum {
            name: name_tok.text.clone(),
            file: model.path.clone(),
            span: (tokens[i].line, tokens[close].line),
            variants,
        });
    }
}

/// Lines in `model` where `enum_name::variant` appears in construction
/// position (not as a `match`/`if let` pattern).
fn find_constructions(model: &FileModel, enum_name: &str, variant: &str) -> Vec<u32> {
    let tokens = &model.tokens;
    let mut lines = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].kind != TokenKind::Ident || tokens[i].text != enum_name {
            continue;
        }
        if tokens.get(i + 1).map(|t| t.text.as_str()) != Some(":")
            || tokens.get(i + 2).map(|t| t.text.as_str()) != Some(":")
            || tokens.get(i + 3).map(|t| t.text.as_str()) != Some(variant)
        {
            continue;
        }
        let v = i + 3;
        // Find the token that follows the variant (and its payload group).
        let after = match tokens.get(v + 1).map(|t| t.text.as_str()) {
            Some("(") | Some("{") => {
                let (open, close_text) = if tokens[v + 1].text == "(" {
                    ("(", ")")
                } else {
                    ("{", "}")
                };
                let mut depth = 0i64;
                let mut j = v + 1;
                while j < tokens.len() {
                    if tokens[j].text == open {
                        depth += 1;
                    } else if tokens[j].text == close_text {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                tokens.get(j + 1).map(|t| t.text.as_str())
            }
            other => other,
        };
        // `=> | =` after the reference marks a pattern context
        // (match arm, or-pattern, `if let … =`).
        let is_pattern = matches!(after, Some("=>") | Some("|") | Some("="));
        if !is_pattern {
            lines.push(tokens[i].line);
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
        let models: Vec<FileModel> = sources
            .iter()
            .map(|(p, s)| FileModel::build(p, s))
            .collect();
        let mut diags = Vec::new();
        check(&models, |p| p.starts_with("lib/"), &mut diags);
        diags
    }

    #[test]
    fn fixture_fail_is_flagged() {
        let diags = run(&[("lib/err.rs", include_str!("../../fixtures/gh004_fail.rs"))]);
        assert!(!diags.is_empty(), "expected dead variants, got {diags:?}");
        assert!(diags.iter().any(|d| d.message.contains("NeverBuilt")));
    }

    #[test]
    fn fixture_pass_is_clean() {
        let diags = run(&[("lib/err.rs", include_str!("../../fixtures/gh004_pass.rs"))]);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn match_arms_do_not_count_as_construction() {
        let diags = run(&[(
            "lib/err.rs",
            "pub enum FooError { Bad(u32) }\nfn show(e: &FooError) -> u32 {\n match e { FooError::Bad(c) => *c }\n}\n",
        )]);
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn cross_file_construction_counts() {
        let diags = run(&[
            ("lib/err.rs", "pub enum FooError { Bad(u32) }\n"),
            ("lib/use.rs", "fn f() -> FooError { FooError::Bad(1) }\n"),
        ]);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn usage_outside_defining_set_still_counts() {
        // Constructed only from an integration test file: still alive.
        let diags = run(&[
            ("lib/err.rs", "pub enum FooError { Bad }\n"),
            ("tests/t.rs", "fn f() -> FooError { FooError::Bad }\n"),
        ]);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }
}
