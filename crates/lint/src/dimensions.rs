//! The sanctioned dimension table for rule GH003.
//!
//! Any `impl Add/Sub/Mul/Div` (or the `*Assign` form) between two unit
//! newtypes must correspond to an entry here; an arithmetic impl that
//! invents a new dimensional identity is a lint violation until the table
//! is extended deliberately. Operations against raw scalars (`f64`, `u64`)
//! are outside the table's scope — dimensionless scaling is always legal.

/// The unit newtypes defined in `greenhetero-core::types`.
///
/// This is also the exemption set for GH002: `impl` blocks on these types
/// may expose `f64` constructors/accessors (`new`, `value`, …) because the
/// newtype boundary is exactly where raw floats are supposed to appear.
pub const UNIT_NEWTYPES: &[&str] = &[
    "Watts",
    "WattHours",
    "Ratio",
    "MegaHertz",
    "Throughput",
    "SimTime",
    "SimDuration",
    "EpochId",
    "ConfigId",
    "WorkloadId",
    "ServerId",
    "PowerRange",
];

/// One sanctioned identity: `lhs op rhs = output`.
///
/// `*Assign` ops are normalized to the base op with `output == lhs` before
/// lookup.
pub type Entry = (&'static str, &'static str, &'static str, &'static str);

/// The sanctioned identities, mirroring the physics of the model:
/// power integrates over time into energy, ratios scale power, and
/// dividing like by like is dimensionless.
pub const SANCTIONED: &[Entry] = &[
    ("Add", "Watts", "Watts", "Watts"),
    ("Sub", "Watts", "Watts", "Watts"),
    ("Mul", "Watts", "Ratio", "Watts"),
    ("Div", "Watts", "Watts", "f64"),
    ("Mul", "Watts", "SimDuration", "WattHours"),
    ("Add", "WattHours", "WattHours", "WattHours"),
    ("Sub", "WattHours", "WattHours", "WattHours"),
    ("Div", "WattHours", "WattHours", "f64"),
    ("Mul", "Ratio", "Ratio", "Ratio"),
    ("Add", "Throughput", "Throughput", "Throughput"),
    ("Sub", "Throughput", "Throughput", "Throughput"),
    ("Div", "Throughput", "Throughput", "f64"),
    ("Add", "SimTime", "SimDuration", "SimTime"),
    ("Sub", "SimTime", "SimTime", "SimDuration"),
    ("Add", "SimDuration", "SimDuration", "SimDuration"),
    ("Sub", "SimDuration", "SimDuration", "SimDuration"),
];

/// `true` if `name` is one of the unit newtypes.
#[must_use]
pub fn is_unit_newtype(name: &str) -> bool {
    UNIT_NEWTYPES.contains(&name)
}

/// Normalizes an operator trait name to its base op (`AddAssign` → `Add`).
/// Returns `None` for traits outside the four arithmetic ops.
#[must_use]
pub fn base_op(trait_name: &str) -> Option<&'static str> {
    match trait_name {
        "Add" | "AddAssign" => Some("Add"),
        "Sub" | "SubAssign" => Some("Sub"),
        "Mul" | "MulAssign" => Some("Mul"),
        "Div" | "DivAssign" => Some("Div"),
        _ => None,
    }
}

/// `true` if `lhs op rhs = output` is a sanctioned identity.
#[must_use]
pub fn is_sanctioned(op: &str, lhs: &str, rhs: &str, output: &str) -> bool {
    SANCTIONED
        .iter()
        .any(|&(o, l, r, out)| o == op && l == lhs && r == rhs && out == output)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_duration_is_energy() {
        assert!(is_sanctioned("Mul", "Watts", "SimDuration", "WattHours"));
        assert!(!is_sanctioned("Mul", "Watts", "SimDuration", "Watts"));
        assert!(!is_sanctioned(
            "Mul",
            "WattHours",
            "SimDuration",
            "WattHours"
        ));
    }

    #[test]
    fn assign_ops_normalize() {
        assert_eq!(base_op("AddAssign"), Some("Add"));
        assert_eq!(base_op("Div"), Some("Div"));
        assert_eq!(base_op("Neg"), None);
        assert_eq!(base_op("Display"), None);
    }

    #[test]
    fn newtype_set_matches_core_types() {
        assert!(is_unit_newtype("Watts"));
        assert!(is_unit_newtype("PowerRange"));
        assert!(!is_unit_newtype("f64"));
        assert!(!is_unit_newtype("Allocation"));
    }
}
