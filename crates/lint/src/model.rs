//! Per-file structural model shared by all rules.
//!
//! Built once per source file from the [`crate::lexer`] token stream:
//! brace-matched spans for `#[cfg(test)]` / `#[test]` regions, `impl` and
//! `trait` block spans, doc-comment line coverage, and
//! `greenhetero-lint: allow(...)` suppression directives.

use std::collections::HashSet;

use crate::lexer::{scan, Comment, Token, TokenKind};

/// An `impl` block: `impl Trait<G> for Target { … }` or `impl Target { … }`.
#[derive(Debug, Clone)]
pub struct ImplBlock {
    /// Last segment of the trait path, when this is a trait impl.
    pub trait_name: Option<String>,
    /// First identifier inside the trait's generic arguments
    /// (`Mul<SimDuration>` → `SimDuration`), when present.
    pub trait_generic: Option<String>,
    /// Base name of the implementing type (`Watts`, `BatteryBank`, …).
    pub target: String,
    /// Token index of the opening `{`.
    pub body_start: usize,
    /// Token index of the matching `}`.
    pub body_end: usize,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
}

/// A `trait` declaration block.
#[derive(Debug, Clone)]
pub struct TraitBlock {
    /// The trait's name.
    pub name: String,
    /// `true` when declared `pub` (without a restriction like `pub(crate)`).
    pub is_pub: bool,
    /// Token index of the opening `{`.
    pub body_start: usize,
    /// Token index of the matching `}`.
    pub body_end: usize,
}

/// One parsed `greenhetero-lint: allow(RULE, …) reason` directive.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// 1-based line the directive comment sits on.
    pub line: u32,
    /// Rule codes listed in the parentheses (upper-cased).
    pub rules: Vec<String>,
    /// `true` when a justification follows the closing parenthesis.
    pub has_reason: bool,
}

/// Everything the rules need to know about one file.
#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative path, as shown in diagnostics.
    pub path: String,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// All comments.
    pub comments: Vec<Comment>,
    /// Lines covered by doc comments (`///`, `//!`, `/** */`).
    pub doc_lines: HashSet<u32>,
    /// Lines holding ordinary (non-doc) comments; transparent to the
    /// doc-attachment walk, exactly as they are to the parser.
    pub comment_lines: HashSet<u32>,
    /// Lines starting an attribute (`#[...]`), used to walk attribute
    /// chains when attaching doc comments to items.
    pub attr_lines: HashSet<u32>,
    /// Inclusive line ranges inside `#[cfg(test)]` / `#[test]` items.
    pub test_ranges: Vec<(u32, u32)>,
    /// Inclusive line ranges of `macro_rules!` definition bodies; their
    /// `$name`-template code is opaque to the item-level rules.
    pub macro_ranges: Vec<(u32, u32)>,
    /// All `impl` blocks.
    pub impls: Vec<ImplBlock>,
    /// All `trait` blocks.
    pub traits: Vec<TraitBlock>,
    /// Suppression directives.
    pub allows: Vec<AllowDirective>,
}

impl FileModel {
    /// Scans and models one file.
    #[must_use]
    pub fn build(path: &str, source: &str) -> Self {
        let scanned = scan(source);
        let tokens = scanned.tokens;
        let comments = scanned.comments;

        let mut doc_lines = HashSet::new();
        let mut comment_lines = HashSet::new();
        let mut allows = Vec::new();
        for c in &comments {
            if c.is_doc {
                doc_lines.insert(c.line);
            } else {
                comment_lines.insert(c.line);
            }
            if let Some(directive) = parse_allow(c) {
                allows.push(directive);
            }
        }

        let mut attr_lines = HashSet::new();
        for (i, t) in tokens.iter().enumerate() {
            if t.text == "#" && tokens.get(i + 1).map(|n| n.text.as_str()) == Some("[") {
                // A `#[derive(...)]` can span several lines; mark them all
                // so doc-attachment walks don't stop mid-attribute.
                let mut depth = 0i64;
                let mut j = i + 1;
                while j < tokens.len() {
                    match tokens[j].text.as_str() {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let end_line = tokens.get(j).map_or(t.line, |e| e.line);
                attr_lines.extend(t.line..=end_line);
                // `#[doc = "…"]` counts as documentation.
                if tokens.get(i + 2).map(|n| n.text.as_str()) == Some("doc") {
                    doc_lines.insert(t.line);
                }
            }
        }

        let test_ranges = find_test_ranges(&tokens);
        let impls = find_impls(&tokens);
        let traits = find_traits(&tokens);
        let macro_ranges = find_macro_ranges(&tokens);

        FileModel {
            path: path.to_string(),
            tokens,
            comments,
            doc_lines,
            comment_lines,
            attr_lines,
            test_ranges,
            macro_ranges,
            impls,
            traits,
            allows,
        }
    }

    /// `true` if `line` falls inside a `macro_rules!` definition body.
    #[must_use]
    pub fn in_macro_def(&self, line: u32) -> bool {
        self.macro_ranges
            .iter()
            .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// `true` if `line` falls inside a test-gated region.
    #[must_use]
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// `true` if a violation of `rule` at `line` is suppressed by an allow
    /// directive (with a reason) on the same or the preceding line.
    #[must_use]
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.iter().any(|a| {
            a.has_reason
                && (a.line == line || a.line + 1 == line)
                && a.rules.iter().any(|r| r == rule)
        })
    }

    /// The innermost `impl` block containing token index `idx`, if any.
    #[must_use]
    pub fn impl_at(&self, idx: usize) -> Option<&ImplBlock> {
        self.impls
            .iter()
            .filter(|b| (b.body_start..=b.body_end).contains(&idx))
            .min_by_key(|b| b.body_end - b.body_start)
    }

    /// The innermost `trait` block containing token index `idx`, if any.
    #[must_use]
    pub fn trait_at(&self, idx: usize) -> Option<&TraitBlock> {
        self.traits
            .iter()
            .filter(|b| (b.body_start..=b.body_end).contains(&idx))
            .min_by_key(|b| b.body_end - b.body_start)
    }

    /// `true` if the item whose first token is on `item_line` carries a doc
    /// comment, walking upward through a contiguous run of attribute and
    /// doc lines.
    #[must_use]
    pub fn has_doc(&self, item_line: u32) -> bool {
        let mut line = item_line;
        while line > 1 {
            let above = line - 1;
            if self.doc_lines.contains(&above) {
                return true;
            }
            // Attributes and plain comments sit between docs and their
            // item without detaching them.
            if self.attr_lines.contains(&above) || self.comment_lines.contains(&above) {
                line = above;
                continue;
            }
            return false;
        }
        false
    }
}

/// Parses a `greenhetero-lint: allow(GH001) reason` comment.
fn parse_allow(comment: &Comment) -> Option<AllowDirective> {
    let marker = "greenhetero-lint:";
    let pos = comment.text.find(marker)?;
    let rest = comment.text[pos + marker.len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rules = rest[..close]
        .split(',')
        .map(|r| r.trim().to_ascii_uppercase())
        .filter(|r| !r.is_empty())
        .collect::<Vec<_>>();
    if rules.is_empty() {
        return None;
    }
    let reason = rest[close + 1..].trim();
    Some(AllowDirective {
        line: comment.line,
        rules,
        has_reason: !reason.is_empty(),
    })
}

/// Finds the token index of the `}` matching the `{` at `open`.
///
/// Returns the last token index if the file is unbalanced (a file that
/// does not parse fails `cargo build` anyway).
#[must_use]
pub fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Locates `#[cfg(test)]` / `#[test]` attributes and brace-matches the item
/// that follows each, yielding inclusive line ranges of test-only code.
fn find_test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].text != "#" || tokens.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
            i += 1;
            continue;
        }
        let attr_line = tokens[i].line;
        // Collect the attribute's tokens up to the matching `]`.
        let mut j = i + 2;
        let mut depth = 1i64;
        let mut names: Vec<&str> = Vec::new();
        while j < tokens.len() && depth > 0 {
            match tokens[j].text.as_str() {
                "[" => depth += 1,
                "]" => depth -= 1,
                other => {
                    if tokens[j].kind == TokenKind::Ident {
                        names.push(other);
                    }
                }
            }
            j += 1;
        }
        let is_test_attr =
            names.first() == Some(&"test") || (names.contains(&"cfg") && names.contains(&"test"));
        if !is_test_attr {
            i = j;
            continue;
        }
        // Find the gated item's body: the first `{` before any `;` at
        // nesting level zero of parens/brackets.
        let mut k = j;
        let mut nest = 0i64;
        let mut end_line = attr_line;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "(" | "[" => nest += 1,
                ")" | "]" => nest -= 1,
                "{" if nest == 0 => {
                    let close = matching_brace(tokens, k);
                    end_line = tokens[close].line;
                    break;
                }
                ";" if nest == 0 => {
                    end_line = tokens[k].line;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        ranges.push((attr_line, end_line));
        i = j;
    }
    ranges
}

/// Locates `macro_rules! name { … }` definition bodies.
fn find_macro_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].kind != TokenKind::Ident || tokens[i].text != "macro_rules" {
            continue;
        }
        if tokens.get(i + 1).map(|t| t.text.as_str()) != Some("!") {
            continue;
        }
        // `macro_rules! name {` — find the body brace.
        let mut k = i + 2;
        while k < tokens.len() && tokens[k].text != "{" {
            k += 1;
        }
        if k < tokens.len() {
            let close = matching_brace(tokens, k);
            ranges.push((tokens[i].line, tokens[close].line));
        }
    }
    ranges
}

/// Reads a type path starting at `i`: consumes `seg::seg::Name<...>` and
/// returns (base identifier of the last segment, index after the path).
fn read_type_path(tokens: &[Token], mut i: usize) -> (Option<String>, Option<String>, usize) {
    let mut base: Option<String> = None;
    let mut generic: Option<String> = None;
    // Leading `&`, lifetimes, `mut`, `dyn` are not expected in impl heads
    // for this codebase's rules; consume defensively.
    while i < tokens.len() {
        match tokens[i].kind {
            TokenKind::Ident => {
                let name = tokens[i].text.clone();
                if name == "for" || name == "where" {
                    break;
                }
                base = Some(name);
                i += 1;
                // `::` continues the path.
                if tokens.get(i).map(|t| t.text.as_str()) == Some(":")
                    && tokens.get(i + 1).map(|t| t.text.as_str()) == Some(":")
                {
                    i += 2;
                    continue;
                }
                // Generic arguments: record the first identifier inside.
                if tokens.get(i).map(|t| t.text.as_str()) == Some("<") {
                    let mut depth = 0i64;
                    while i < tokens.len() {
                        match tokens[i].text.as_str() {
                            "<" => depth += 1,
                            ">" => {
                                depth -= 1;
                                if depth == 0 {
                                    i += 1;
                                    break;
                                }
                            }
                            _ => {
                                if tokens[i].kind == TokenKind::Ident && generic.is_none() {
                                    generic = Some(tokens[i].text.clone());
                                }
                            }
                        }
                        i += 1;
                    }
                }
                break;
            }
            _ => break,
        }
    }
    (base, generic, i)
}

/// Locates all `impl` blocks with their trait/target names and body spans.
fn find_impls(tokens: &[Token]) -> Vec<ImplBlock> {
    let mut impls = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].kind != TokenKind::Ident || tokens[i].text != "impl" {
            i += 1;
            continue;
        }
        let line = tokens[i].line;
        let mut j = i + 1;
        // Skip `impl<...>` generics.
        if tokens.get(j).map(|t| t.text.as_str()) == Some("<") {
            let mut depth = 0i64;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        let (first, first_generic, after_first) = read_type_path(tokens, j);
        let mut trait_name = None;
        let mut trait_generic = None;
        let mut target = first.clone();
        let mut k = after_first;
        if tokens.get(k).map(|t| t.text.as_str()) == Some("for") {
            trait_name = first;
            trait_generic = first_generic;
            let (tgt, _, after_tgt) = read_type_path(tokens, k + 1);
            target = tgt;
            k = after_tgt;
        }
        // Find the body `{` (skipping a possible `where` clause).
        while k < tokens.len() && tokens[k].text != "{" && tokens[k].text != ";" {
            k += 1;
        }
        if let (Some(target), Some("{")) = (target, tokens.get(k).map(|t| t.text.as_str())) {
            let close = matching_brace(tokens, k);
            impls.push(ImplBlock {
                trait_name,
                trait_generic,
                target,
                body_start: k,
                body_end: close,
                line,
            });
            // Continue scanning *inside* the impl too (nested impls are
            // rare but legal); just move past the `impl` keyword.
        }
        i += 1;
    }
    impls
}

/// Locates all `trait` declaration blocks.
fn find_traits(tokens: &[Token]) -> Vec<TraitBlock> {
    let mut traits = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].kind != TokenKind::Ident || tokens[i].text != "trait" {
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokenKind::Ident {
            continue;
        }
        // `pub` may sit immediately before, or before `unsafe trait`.
        let is_pub = (1..=2).any(|back| {
            i >= back
                && tokens[i - back].text == "pub"
                && tokens.get(i - back + 1).map(|t| t.text.as_str()) != Some("(")
        });
        // Find the body: first `{` before a `;` (skip supertraits/where).
        let mut k = i + 2;
        while k < tokens.len() && tokens[k].text != "{" && tokens[k].text != ";" {
            k += 1;
        }
        if tokens.get(k).map(|t| t.text.as_str()) == Some("{") {
            let close = matching_brace(tokens, k);
            traits.push(TraitBlock {
                name: name_tok.text.clone(),
                is_pub,
                body_start: k,
                body_end: close,
            });
        }
    }
    traits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_ranges_cover_cfg_test_mod() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}\n";
        let m = FileModel::build("x.rs", src);
        assert!(!m.in_test_code(1));
        assert!(m.in_test_code(3));
        assert!(m.in_test_code(4));
        assert!(!m.in_test_code(6));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_range() {
        let src = "#[cfg(feature = \"x\")]\nmod gated {\n fn a() {}\n}\n";
        let m = FileModel::build("x.rs", src);
        assert!(!m.in_test_code(3));
    }

    #[test]
    fn allow_directive_requires_reason() {
        let src = "// greenhetero-lint: allow(GH001) checked: index bounded above\nlet x = v[0];\n// greenhetero-lint: allow(GH002)\nlet y = 1;\n";
        let m = FileModel::build("x.rs", src);
        assert!(m.is_allowed("GH001", 2));
        assert!(m.is_allowed("GH001", 1));
        assert!(
            !m.is_allowed("GH002", 4),
            "reasonless directive must not suppress"
        );
        assert!(!m.is_allowed("GH001", 4));
    }

    #[test]
    fn impl_blocks_are_modeled() {
        let src = "impl Mul<SimDuration> for Watts {\n type Output = WattHours;\n}\nimpl Watts { fn f(&self) {} }\n";
        let m = FileModel::build("x.rs", src);
        assert_eq!(m.impls.len(), 2);
        assert_eq!(m.impls[0].trait_name.as_deref(), Some("Mul"));
        assert_eq!(m.impls[0].trait_generic.as_deref(), Some("SimDuration"));
        assert_eq!(m.impls[0].target, "Watts");
        assert_eq!(m.impls[1].trait_name, None);
        assert_eq!(m.impls[1].target, "Watts");
    }

    #[test]
    fn trait_blocks_and_pubness() {
        let src = "pub trait Predictor { fn observe(&mut self, v: f64); }\ntrait Private {}\npub(crate) trait Half {}\n";
        let m = FileModel::build("x.rs", src);
        assert_eq!(m.traits.len(), 3);
        assert!(m.traits[0].is_pub);
        assert!(!m.traits[1].is_pub);
        assert!(!m.traits[2].is_pub);
    }

    #[test]
    fn multiline_attributes_do_not_break_doc_attachment() {
        let src = "/// Documented.\n#[derive(\n    Debug, Clone,\n)]\npub struct A(u64);\n";
        let m = FileModel::build("x.rs", src);
        assert!(m.has_doc(5));
    }

    #[test]
    fn macro_rules_bodies_are_tracked() {
        let src = "macro_rules! m {\n () => {\n  pub struct Inner;\n };\n}\npub struct Outer;\n";
        let m = FileModel::build("x.rs", src);
        assert!(m.in_macro_def(3));
        assert!(!m.in_macro_def(6));
    }

    #[test]
    fn doc_attachment_walks_attribute_chains() {
        let src =
            "/// Documented.\n#[derive(Debug)]\npub struct A;\n\n#[derive(Debug)]\npub struct B;\n";
        let m = FileModel::build("x.rs", src);
        assert!(m.has_doc(3));
        assert!(!m.has_doc(6));
    }
}
