//! GH002 fixture: bare floats leaking through public API boundaries.

pub struct Controller;

impl Controller {
    pub fn set_budget(&mut self, budget_watts: f64) {
        let _ = budget_watts;
    }
}

pub fn green_fraction(green: f64, total: f64) -> f64 {
    green / total
}

pub trait Observer {
    fn observe(&mut self, sample: f32);
}
