//! GH005 fixture: every public item documented; private and restricted
//! items exempt.

/// A documented struct.
pub struct Covered {
    /// A documented field.
    pub raw: u32,
}

/// A documented function.
pub fn documented() -> u32 {
    0
}

/// A documented enum.
#[derive(Clone)]
pub enum Shape {
    /// Variants are out of scope, but this one is documented anyway.
    Round,
}

/// A documented constant.
pub const LIMIT: u32 = 8;

pub(crate) struct Internal;

fn private() {}

#[cfg(test)]
mod tests {
    #[test]
    fn pub_in_test_mod_is_exempt() {
        struct Local;
        let _ = Local;
    }
}
