//! GH009 violating fixture: drift in both directions — a catalog
//! constant nobody uses, and a registration literal the catalog has
//! never heard of.

/// The metric-name catalog.
pub mod names {
    /// Documented, exported… and never registered or read anywhere.
    pub const ORPHAN: &str = "gh_orphan_total";
    /// A live constant, so the fixture also shows the healthy case.
    pub const USED: &str = "gh_used_total";
}

/// Wires instruments: one through the catalog, one rogue literal that
/// drifted away from it (a rename that only happened on one side).
pub fn wire(r: &Registry) {
    r.counter(names::USED).inc();
    r.counter("gh_rogue_total").inc();
}
