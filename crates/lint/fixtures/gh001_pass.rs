//! GH001 fixture: no violations — fallible paths return errors, test code
//! and justified sites are exempt.

pub fn first(v: &[u32]) -> Result<u32, String> {
    v.first().copied().ok_or_else(|| "empty input".to_string())
}

pub fn defaulted(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}

pub fn bounded(v: &[u32]) -> u32 {
    if v.is_empty() {
        return 0;
    }
    // greenhetero-lint: allow(GH001) non-emptiness is checked above
    v.last().copied().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Option<u32> = Some(7);
        assert_eq!(v.unwrap(), 7);
    }

    #[test]
    fn panics_are_fine_in_tests() {
        if false {
            panic!("test-only panic");
        }
    }
}
