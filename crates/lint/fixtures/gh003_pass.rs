//! GH003 fixture: only sanctioned identities and scalar scaling.

pub struct Watts(f64);
pub struct WattHours(f64);
pub struct Ratio(f64);
pub struct SimDuration(u64);

impl SimDuration {
    fn as_hours(&self) -> f64 {
        self.0 as f64 / 3600.0
    }
}

impl core::ops::Add for Watts {
    type Output = Watts;
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl core::ops::Mul<Ratio> for Watts {
    type Output = Watts;
    fn mul(self, rhs: Ratio) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl core::ops::Mul<SimDuration> for Watts {
    type Output = WattHours;
    fn mul(self, rhs: SimDuration) -> WattHours {
        WattHours(self.0 * rhs.as_hours())
    }
}

impl core::ops::Div for WattHours {
    type Output = f64;
    fn div(self, rhs: WattHours) -> f64 {
        self.0 / rhs.0
    }
}

// Scalar scaling is always dimensionally safe.
impl core::ops::Mul<f64> for Watts {
    type Output = Watts;
    fn mul(self, rhs: f64) -> Watts {
        Watts(self.0 * rhs)
    }
}
