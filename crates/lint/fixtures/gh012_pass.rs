//! GH012 pass fixture: work dispatched through the bounded pool, plus
//! the sanctioned exemptions (test code, justified allow).

/// Work goes to the scheduler, not to a fresh OS thread.
fn submit(pool: &TaskPool, task: Box<dyn PollTask>) {
    pool.spawn(task);
}

/// Method calls named `spawn` on non-scope receivers are fine.
fn resubmit(&self, task: Box<dyn PollTask>) {
    self.pool.spawn(task);
}

/// A justified escape hatch must sit on the spawn line itself.
fn justified(work: impl FnOnce() + Send + 'static) {
    // greenhetero-lint: allow(GH012) one-shot helper outside the session hot path, joined before return
    let handle = std::thread::spawn(work);
    drop(handle.join());
}

#[cfg(test)]
mod tests {
    /// Tests may spin up scaffolding threads freely.
    #[test]
    fn harness_thread() {
        let handle = std::thread::spawn(|| 42);
        assert_eq!(handle.join().ok(), Some(42));
    }
}
