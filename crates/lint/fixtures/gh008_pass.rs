//! GH008 compliant fixture: the blessed accumulation pattern —
//! partial sums live in plain `f64`, and the clamping `Ratio`
//! constructor runs exactly once, on the final value.

pub struct Accumulator {
    soc_sum: f64,
    count: u32,
}

impl Accumulator {
    /// Accumulate in plain `f64`; nothing clamps mid-stream.
    pub fn absorb(&mut self, soc: Ratio) {
        self.soc_sum += soc.value();
        self.count += 1;
    }

    /// Clamp once, at the end, on the already-averaged value.
    pub fn mean(&self) -> Ratio {
        Ratio::saturating(self.soc_sum / f64::from(self.count.max(1)))
    }
}

/// The same discipline for a one-shot reduction.
pub fn mean_soc(socs: &[Ratio]) -> Ratio {
    let mut sum = 0.0;
    for s in socs {
        sum += s.value();
    }
    Ratio::saturating(sum / socs.len().max(1) as f64)
}
