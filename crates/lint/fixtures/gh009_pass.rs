//! GH009 compliant fixture: every registration goes through a catalog
//! constant (or a literal that matches one), and every constant has a
//! live use.

/// The metric-name catalog.
pub mod names {
    /// Registered below through the constant.
    pub const EPOCHS: &str = "gh_epochs_total";
    /// Registered below by literal — allowed, since the value matches.
    pub const RETRIES: &str = "gh_retries_total";
}

/// Wires instruments coherently with the catalog.
pub fn wire(r: &Registry) {
    r.counter(names::EPOCHS).inc();
    r.counter("gh_retries_total").inc();
}
