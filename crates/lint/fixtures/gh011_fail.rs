//! GH011 violating fixture: unbounded queues in a backpressure-scoped
//! module — overload accumulates in memory instead of surfacing as an
//! explicit rejection.

use std::sync::mpsc;

/// Wires a supervisor to its sessions through an unbounded queue: a
/// stalled session lets admissions pile up without limit.
pub fn admission_queue() -> (mpsc::Sender<u64>, mpsc::Receiver<u64>) {
    mpsc::channel()
}

/// Same mistake with a turbofish.
pub fn tick_queue() -> (mpsc::Sender<()>, mpsc::Receiver<()>) {
    mpsc::channel::<()>()
}

/// A crossbeam-style unbounded constructor is no better.
pub fn fan_out_queue() -> (mpsc::Sender<u64>, mpsc::Receiver<u64>) {
    unbounded()
}

/// Stand-in for a vendored unbounded constructor.
fn unbounded() -> (mpsc::Sender<u64>, mpsc::Receiver<u64>) {
    mpsc::channel()
}
