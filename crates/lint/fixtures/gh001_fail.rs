//! GH001 fixture: every panic path below must be flagged.

pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn named(v: Option<u32>) -> u32 {
    v.expect("value must be present")
}

pub fn boom(flag: bool) {
    if flag {
        panic!("unhandled state");
    }
}

pub fn cold(code: u8) -> u8 {
    match code {
        0 => 0,
        _ => unreachable!("codes above zero are filtered earlier"),
    }
}

pub fn later() {
    todo!()
}

pub fn reasonless() -> u32 {
    // greenhetero-lint: allow(GH001)
    Some(3).unwrap()
}
