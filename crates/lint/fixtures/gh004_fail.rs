//! GH004 fixture: `NeverBuilt` is matched but never constructed.

pub enum FixtureError {
    Used(u32),
    NeverBuilt,
}

pub fn fail(code: u32) -> FixtureError {
    FixtureError::Used(code)
}

pub fn describe(e: &FixtureError) -> &'static str {
    match e {
        FixtureError::Used(_) => "used",
        FixtureError::NeverBuilt => "impossible",
    }
}
