//! GH006 fixture: per-solve heap allocation inside a hot loop.

fn hot_loop(groups: usize, shares: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    for _ in 0..groups {
        let copy = shares.to_vec();
        out.extend(copy);
    }
    let doubled: Vec<f64> = shares.iter().map(|s| s * 2.0).collect();
    out.extend(doubled);
    let padding = vec![0.0; groups];
    out.extend(padding);
    let mut sized = Vec::with_capacity(groups);
    sized.push(0.0);
    out.extend(sized);
    out
}
