//! GH003 fixture: cross-newtype operators outside the sanctioned table.

pub struct Watts(f64);
pub struct WattHours(f64);
pub struct SimDuration(u64);

// Energy times time means nothing: not in the table.
impl core::ops::Mul<SimDuration> for WattHours {
    type Output = WattHours;
    fn mul(self, _rhs: SimDuration) -> WattHours {
        self
    }
}

// Right identity, wrong output dimension.
impl core::ops::Mul<SimDuration> for Watts {
    type Output = Watts;
    fn mul(self, _rhs: SimDuration) -> Watts {
        self
    }
}
