//! GH011 compliant fixture: every queue is bounded and a full queue is
//! an explicit, reasoned rejection — the daemon's backpressure contract.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};

/// A bounded admission queue: depth is a config knob, not infinity.
pub fn admission_queue(depth: usize) -> (SyncSender<u64>, Receiver<u64>) {
    sync_channel(depth.max(1))
}

/// Submitting through the bounded queue: `try_send` failure becomes a
/// reason the caller can act on instead of silent growth.
pub fn submit(tx: &SyncSender<u64>, ticket: u64) -> Result<(), &'static str> {
    tx.try_send(ticket).map_err(|e| match e {
        TrySendError::Full(_) => "backpressure: admission queue full; retry",
        TrySendError::Disconnected(_) => "daemon is draining",
    })
}
