//! GH002 fixture: no violations — unit newtypes at the API surface, raw
//! floats only at the newtype boundary or behind a justified allow.

pub struct Watts(f64);

impl Watts {
    pub fn new(raw: f64) -> Watts {
        Watts(raw)
    }

    pub fn value(&self) -> f64 {
        self.0
    }
}

pub struct Controller;

impl Controller {
    pub fn set_budget(&mut self, budget: Watts) {
        let _ = budget;
    }
}

// greenhetero-lint: allow(GH002) smoothing factor is genuinely dimensionless
pub fn smooth(alpha: f64, prev: Watts, next: Watts) -> Watts {
    Watts(prev.0 * (1.0 - alpha) + next.0 * alpha)
}

fn internal_math(x: f64) -> f64 {
    x * x
}

pub(crate) fn crate_math(x: f64) -> f64 {
    internal_math(x)
}
