//! GH008 violating fixture: every accumulation below routes partial sums
//! through the clamping `Ratio` constructor, so any sum that crosses 1.0
//! silently saturates — the PR 5 fleet mean-SoC bug, in all four shapes.

pub struct Accumulator {
    mean_soc: Ratio,
}

impl Accumulator {
    /// Shape 1: read-modify-write through the clamp.
    pub fn absorb(&mut self, soc: Ratio) {
        self.mean_soc = Ratio::saturating(self.mean_soc.value() + soc.value());
    }
}

/// Shape 2: fold seeded with a clamped accumulator.
pub fn fold_mean(socs: &[Ratio]) -> Ratio {
    socs.iter()
        .fold(Ratio::saturating(0.0), |acc, s| {
            Ratio::saturating(acc.value() + s.value())
        })
}

/// Shape 3: summing directly into the newtype.
pub fn sum_mean(socs: &[Ratio]) -> Ratio {
    socs.iter().copied().sum::<Ratio>()
}

/// Shape 4: `+=` on a clamping-typed binding.
pub fn running(steps: &[Ratio]) -> Ratio {
    let mut acc = Ratio::saturating(0.0);
    for step in steps {
        acc += *step;
    }
    acc
}
