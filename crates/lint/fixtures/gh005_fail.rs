//! GH005 fixture: public surface with missing documentation.

pub struct Bare {
    pub raw: u32,
}

pub fn undocumented() -> u32 {
    0
}

pub enum Shape {
    Round,
}

pub const LIMIT: u32 = 8;
