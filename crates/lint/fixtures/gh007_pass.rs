//! GH007 compliant fixture: the same reductions over ordered storage
//! (`BTreeMap`/`BTreeSet`), plus an explicit sort before emission.

use std::collections::{BTreeMap, BTreeSet};

pub struct FleetLedger {
    per_rack: BTreeMap<u64, f64>,
}

impl FleetLedger {
    /// Folds rack totals in key order — identical on every run.
    pub fn total(&self) -> f64 {
        let mut sum = 0.0;
        for (_rack, v) in &self.per_rack {
            sum += v;
        }
        sum
    }

    /// Counts in key order.
    pub fn live_racks(&self) -> usize {
        self.per_rack.values().filter(|v| **v > 0.0).count()
    }
}

/// Ordered set iterates in key order; the extra sort shows the other
/// accepted shape for data that arrives unordered.
pub fn rows(seen: BTreeSet<u64>) -> Vec<u64> {
    let mut out: Vec<u64> = seen.iter().copied().collect();
    out.sort_unstable();
    out
}
