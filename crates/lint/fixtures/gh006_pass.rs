//! GH006 fixture: allocation-free hot loop, justified setup escapes,
//! and test code (all out of the rule's reach).

fn hot_loop(scratch: &mut [f64], shares: &[f64]) -> f64 {
    let mut best = 0.0;
    for (slot, &s) in scratch.iter_mut().zip(shares) {
        *slot = s * 2.0;
        best += *slot;
    }
    best
}

fn setup(groups: usize) -> Vec<f64> {
    // greenhetero-lint: allow(GH006) one-time constructor allocation, outside the walk
    vec![0.0; groups]
}

fn takes_a_vec_type(v: Vec<f64>) -> f64 {
    v.iter().sum()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_allocate() {
        let v: Vec<u32> = (0..3).collect();
        assert_eq!(super::hot_loop(&mut [0.0; 3], &[1.0, 2.0, 3.0]), 12.0);
        assert_eq!(v.len() + super::setup(2).len(), 5);
    }
}
