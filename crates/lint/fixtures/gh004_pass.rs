//! GH004 fixture: every variant has a live construction site.

pub enum FixtureError {
    Used(u32),
    Empty,
    Saturated { limit: u32 },
}

pub fn fail(code: u32) -> FixtureError {
    FixtureError::Used(code)
}

pub fn check(len: usize, cap: u32) -> Result<(), FixtureError> {
    if len == 0 {
        return Err(FixtureError::Empty);
    }
    if len as u32 > cap {
        return Err(FixtureError::Saturated { limit: cap });
    }
    Ok(())
}

pub fn describe(e: &FixtureError) -> &'static str {
    match e {
        FixtureError::Used(_) => "used",
        FixtureError::Empty => "empty",
        FixtureError::Saturated { .. } => "saturated",
    }
}
