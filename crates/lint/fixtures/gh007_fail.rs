//! GH007 violating fixture: unordered-container iteration in a
//! determinism-tagged path. Every iteration below reads `RandomState`
//! order and can differ between two runs of the same scenario.

use std::collections::{HashMap, HashSet};

pub struct FleetLedger {
    per_rack: HashMap<u64, f64>,
}

impl FleetLedger {
    /// Folds rack totals in hash order — nondeterministic float sums.
    pub fn total(&self) -> f64 {
        let mut sum = 0.0;
        for (_rack, v) in &self.per_rack {
            sum += v;
        }
        sum
    }

    /// Counts in hash order; harmless result, but the pattern is banned
    /// wholesale so reviewers never have to argue about closures.
    pub fn live_racks(&self) -> usize {
        self.per_rack.values().filter(|v| **v > 0.0).count()
    }
}

/// Emits rows straight out of a `HashSet` — row order changes per run.
pub fn rows(seen: HashSet<u64>) -> Vec<u64> {
    seen.iter().copied().collect()
}
