//! GH010 compliant fixture: the same jobs done deterministically — time
//! is threaded through as simulated epochs, identity comes from explicit
//! rack ids, and hashing uses a fixed-seed hasher.

/// Stamps a result row with simulated time passed in by the engine.
pub fn stamp(epoch: u64, epoch_seconds: u64) -> u64 {
    epoch * epoch_seconds
}

/// Keys a reduction by the rack's own id, not scheduler identity.
pub fn worker_key(rack_id: u64) -> u64 {
    rack_id
}

/// Mixes a deterministic seed instead of ambient state
/// (splitmix64-style, same as the fleet substrate's seed derivation).
pub fn mix(seed: u64, rack: u64) -> u64 {
    let mut z = seed ^ rack.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 27)
}
