//! GH012 fail fixture: direct thread spawning in a non-allowlisted
//! module — every flavour the rule must catch.

/// Thread-per-session: the exact pattern the scheduler replaced.
fn per_session(work: impl FnOnce() + Send + 'static) {
    std::thread::spawn(work);
}

/// A named thread via the builder API is still an unbudgeted thread.
fn named(work: impl FnOnce() + Send + 'static) {
    let spawned = std::thread::Builder::new()
        .name("rogue".into())
        .spawn(work);
    drop(spawned);
}

/// Scoped threads escape the pool budget just the same.
fn scoped(items: &[u64]) -> u64 {
    let mut total = 0;
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| items.iter().sum::<u64>());
        total = handle.join().unwrap_or(0);
    });
    total
}
