//! GH010 violating fixture: ambient nondeterminism in a module that is
//! not tagged `Timing` — each site reads process state that differs
//! between runs of the same seeded scenario.

use std::collections::hash_map::RandomState;
use std::time::{Instant, SystemTime};

/// Stamps a result row with the ambient monotonic clock.
pub fn stamp() -> Instant {
    Instant::now()
}

/// Mixes wall-clock time into a report.
pub fn wall_seconds() -> u64 {
    SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Keys a reduction by scheduler-assigned worker identity.
pub fn worker_key() -> u64 {
    let id = std::thread::current().id();
    format!("{id:?}").len() as u64
}

/// Builds a hasher seeded differently every process.
pub fn hasher() -> RandomState {
    RandomState::new()
}
