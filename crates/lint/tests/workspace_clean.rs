//! The acceptance gate: running the analyzer over the real workspace must
//! produce zero diagnostics, and the output formats must be stable.

// Integration-test helpers sit outside `#[test]` fns, where the
// allow-*-in-tests clippy knobs do not reach; panicking is fine here.
#![allow(clippy::expect_used)]

use std::path::PathBuf;

use greenhetero_lint::{analyze_workspace, diag};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

#[test]
fn real_workspace_is_clean() {
    let diags = analyze_workspace(&workspace_root()).expect("workspace scan succeeds");
    assert!(
        diags.is_empty(),
        "greenhetero-lint found {} violation(s) in the workspace:\n{}",
        diags.len(),
        diag::render_text(&diags)
    );
}

#[test]
fn clean_run_renders_empty_json_array() {
    let diags = analyze_workspace(&workspace_root()).expect("workspace scan succeeds");
    assert_eq!(diag::render_json(&diags), "[]\n");
}

#[test]
fn fixtures_are_excluded_from_workspace_scans() {
    // The deliberate violations under crates/lint/fixtures must never leak
    // into a workspace run.
    let files = greenhetero_lint::collect_workspace_files(&workspace_root())
        .expect("workspace scan succeeds");
    assert!(files.iter().all(|(p, _)| !p.contains("fixtures/")));
    // Sanity: the scan did see the real library sources.
    assert!(files.iter().any(|(p, _)| p == "crates/core/src/types.rs"));
}
