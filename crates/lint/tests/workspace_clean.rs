//! The acceptance gate: running the analyzer over the real workspace must
//! produce zero diagnostics, and the output formats must be stable.

// Integration-test helpers sit outside `#[test]` fns, where the
// allow-*-in-tests clippy knobs do not reach; panicking is fine here.
#![allow(clippy::expect_used)]

use std::path::PathBuf;

use greenhetero_lint::{
    analyze_files_report, analyze_workspace, analyze_workspace_report, diag, RULES,
};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

#[test]
fn real_workspace_is_clean() {
    let diags = analyze_workspace(&workspace_root()).expect("workspace scan succeeds");
    assert!(
        diags.is_empty(),
        "greenhetero-lint found {} violation(s) in the workspace:\n{}",
        diags.len(),
        diag::render_text(&diags)
    );
}

#[test]
fn clean_run_renders_empty_json_array() {
    let diags = analyze_workspace(&workspace_root()).expect("workspace scan succeeds");
    assert_eq!(diag::render_json(&diags), "[]\n");
}

#[test]
fn self_lint_report_census_names_only_real_rules() {
    // The suppression census is the inventory of every justified escape
    // hatch in the tree: each record must name a catalogued rule, carry a
    // positive count, and list concrete sites. A blanket or misspelled
    // directive would either fail GH000 (no reason) or vanish from the
    // census here — both visible.
    let report =
        analyze_workspace_report(&workspace_root(), None).expect("workspace scan succeeds");
    assert!(report.diagnostics.is_empty());
    assert!(!report.suppressions.is_empty(), "census unexpectedly empty");
    for record in &report.suppressions {
        assert!(
            RULES.iter().any(|(code, _)| *code == record.rule),
            "census names unknown rule {:?}",
            record.rule
        );
        assert!(record.count > 0);
        assert_eq!(record.count, record.sites.len());
        assert!(record
            .sites
            .iter()
            .all(|s| s.line > 0 && !s.file.is_empty()));
    }
    // The new determinism rules are in the catalog the census checks against.
    for code in ["GH007", "GH008", "GH009", "GH010", "GH011"] {
        assert!(RULES.iter().any(|(c, _)| *c == code), "missing {code}");
    }
}

#[test]
fn drift_report_accounts_for_every_catalog_constant() {
    let report =
        analyze_workspace_report(&workspace_root(), None).expect("workspace scan succeeds");
    assert!(report.drift.catalog_size > 0, "telemetry catalog not found");
    // Every drift entry that survives without a diagnostic must be a
    // signed-off (suppressed) one; unsuppressed drift is a GH009 violation
    // and the clean-workspace test would already have failed.
    assert!(report.drift.unused_catalog.iter().all(|u| u.suppressed));
    assert!(report
        .drift
        .unregistered_literals
        .iter()
        .all(|l| l.suppressed));
}

#[test]
fn rule_filter_narrows_diagnostics_but_not_the_census() {
    let report = analyze_workspace_report(&workspace_root(), Some("GH008"))
        .expect("workspace scan succeeds");
    assert!(report.diagnostics.iter().all(|d| d.rule == "GH008"));
    // The census and drift inventory stay complete under a filter.
    assert!(!report.suppressions.is_empty());
    assert!(report.drift.catalog_size > 0);
}

#[test]
fn reintroducing_the_pr5_ratio_accumulation_is_caught() {
    // Regression harness for the PR 5 fleet bug: feeding the exact
    // saturating-partial-sum pattern back into fleet.rs must trip GH008.
    let source = "\
impl FleetAccumulator {
    fn absorb(&mut self, e: &EpochRecord) {
        self.mean_soc = Ratio::saturating(self.mean_soc.value() + e.soc.value());
    }
}
";
    let report = analyze_files_report(
        &[("crates/sim/src/fleet.rs".to_string(), source.to_string())],
        None,
    );
    let gh008: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "GH008")
        .collect();
    assert_eq!(
        gh008.len(),
        1,
        "PR 5 pattern not caught: {:?}",
        report.diagnostics
    );
    assert_eq!(gh008[0].file, "crates/sim/src/fleet.rs");
    assert!(gh008[0].message.contains("self.mean_soc"));
}

#[test]
fn every_rule_has_a_fixture_pair_that_trips_and_passes() {
    // GH007–GH011 ship positive/negative fixtures; each fail fixture must
    // trip exactly its own rule and each pass fixture must be clean under
    // it. Paths are chosen so the fixtures land in the rules' scopes.
    let cases: &[(&str, &str, &str, &str)] = &[
        (
            "GH007",
            "crates/sim/src/fleet.rs",
            include_str!("../fixtures/gh007_fail.rs"),
            include_str!("../fixtures/gh007_pass.rs"),
        ),
        (
            "GH008",
            "crates/sim/src/fleet.rs",
            include_str!("../fixtures/gh008_fail.rs"),
            include_str!("../fixtures/gh008_pass.rs"),
        ),
        (
            "GH009",
            "crates/core/src/telemetry/mod.rs",
            include_str!("../fixtures/gh009_fail.rs"),
            include_str!("../fixtures/gh009_pass.rs"),
        ),
        (
            "GH010",
            "crates/sim/src/report.rs",
            include_str!("../fixtures/gh010_fail.rs"),
            include_str!("../fixtures/gh010_pass.rs"),
        ),
        (
            "GH011",
            "crates/serve/src/supervisor.rs",
            include_str!("../fixtures/gh011_fail.rs"),
            include_str!("../fixtures/gh011_pass.rs"),
        ),
    ];
    for (rule, path, fail_src, pass_src) in cases {
        let fail = analyze_files_report(&[(path.to_string(), fail_src.to_string())], Some(rule));
        assert!(
            !fail.diagnostics.is_empty(),
            "{rule} fail fixture produced no diagnostics"
        );
        assert!(fail.diagnostics.iter().all(|d| d.rule == *rule));
        let pass = analyze_files_report(&[(path.to_string(), pass_src.to_string())], Some(rule));
        assert!(
            pass.diagnostics.is_empty(),
            "{rule} pass fixture tripped: {:?}",
            pass.diagnostics
        );
    }
}

#[test]
fn fixtures_are_excluded_from_workspace_scans() {
    // The deliberate violations under crates/lint/fixtures must never leak
    // into a workspace run.
    let files = greenhetero_lint::collect_workspace_files(&workspace_root())
        .expect("workspace scan succeeds");
    assert!(files.iter().all(|(p, _)| !p.contains("fixtures/")));
    // Sanity: the scan did see the real library sources.
    assert!(files.iter().any(|(p, _)| p == "crates/core/src/types.rs"));
}
