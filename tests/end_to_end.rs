//! Cross-crate integration tests: full simulated days driven through the
//! public API, checking system-level invariants the unit tests cannot see.

use greenhetero::core::policies::PolicyKind;
use greenhetero::core::sources::SupplyCase;
use greenhetero::core::types::Watts;
use greenhetero::power::solar::SolarProfile;
use greenhetero::server::rack::Combination;
use greenhetero::server::workload::WorkloadKind;
use greenhetero::sim::engine::run_scenario;
use greenhetero::sim::report::RunReport;
use greenhetero::sim::runner::{compare_policies, sweep_grid_budget};
use greenhetero::sim::scenario::Scenario;

fn small(policy: PolicyKind) -> Scenario {
    Scenario {
        servers_per_type: 2,
        ..Scenario::paper_runtime(policy)
    }
}

#[test]
fn every_policy_survives_a_week() {
    for policy in PolicyKind::ALL {
        let scenario = Scenario {
            days: 7,
            servers_per_type: 1,
            ..Scenario::paper_runtime(policy)
        };
        let report = run_scenario(scenario).expect("week-long run");
        assert_eq!(report.epochs.len(), 7 * 96, "{policy}");
        assert!(report.mean_throughput().value() > 0.0, "{policy}");
    }
}

#[test]
fn grid_draw_never_exceeds_budget_in_any_epoch() {
    let report = run_scenario(small(PolicyKind::GreenHetero)).expect("run");
    for e in &report.epochs {
        assert!(
            (e.grid_load + e.grid_charge).value() <= 1000.0 + 1e-6,
            "epoch {} drew {} + {}",
            e.epoch,
            e.grid_load,
            e.grid_charge
        );
    }
    assert!(report.grid_peak <= Watts::new(1000.0));
}

#[test]
fn battery_never_violates_dod_floor() {
    let report = run_scenario(small(PolicyKind::GreenHetero)).expect("run");
    for e in &report.epochs {
        assert!(
            e.soc.value() >= 0.6 - 1e-6,
            "epoch {}: SoC {} below the 40% DoD floor",
            e.epoch,
            e.soc
        );
        assert!(e.soc.value() <= 1.0 + 1e-9);
    }
}

#[test]
fn no_epoch_charges_and_discharges_simultaneously() {
    let report = run_scenario(small(PolicyKind::GreenHetero)).expect("run");
    for e in &report.epochs {
        assert!(
            e.battery_charge.is_zero() || e.battery_discharge.is_zero(),
            "epoch {} both charged and discharged",
            e.epoch
        );
    }
}

#[test]
fn load_power_is_covered_by_sources_each_epoch() {
    let report = run_scenario(small(PolicyKind::GreenHetero)).expect("run");
    for e in &report.epochs {
        // Load never exceeds what the sources could deliver that epoch.
        let sources = e.solar + e.battery_discharge + e.grid_load;
        assert!(
            e.load.value() <= sources.value() + 1e-6,
            "epoch {}: load {} exceeds sources {}",
            e.epoch,
            e.load,
            sources
        );
        // And never exceeds the scheduler's budget.
        assert!(e.load.value() <= e.budget.value() + 1e-6);
    }
}

#[test]
fn epu_is_a_valid_ratio_for_all_policies() {
    for policy in PolicyKind::ALL {
        let report = run_scenario(small(policy)).expect("run");
        let epu = report.epu().value();
        assert!((0.0..=1.0).contains(&epu), "{policy}: EPU {epu}");
    }
}

#[test]
fn greenhetero_dominates_uniform_on_throughput_and_epu() {
    let outcomes = compare_policies(
        &small(PolicyKind::Uniform),
        &[PolicyKind::Uniform, PolicyKind::GreenHetero],
    )
    .expect("comparison");
    let uni = &outcomes[0].report;
    let gh = &outcomes[1].report;
    assert!(gh.mean_throughput() > uni.mean_throughput());
    assert!(gh.epu().value() >= uni.epu().value() - 1e-9);
}

#[test]
fn runs_are_deterministic_per_seed_and_diverge_across_seeds() {
    let a = run_scenario(small(PolicyKind::GreenHetero)).expect("run");
    let b = run_scenario(small(PolicyKind::GreenHetero)).expect("run");
    assert_eq!(a.epochs, b.epochs);

    let c = run_scenario(Scenario {
        seed: 7,
        ..small(PolicyKind::GreenHetero)
    })
    .expect("run");
    assert_ne!(a.epochs, c.epochs);
}

#[test]
fn more_grid_budget_never_hurts() {
    let rows = sweep_grid_budget(
        &small(PolicyKind::GreenHetero),
        &[Watts::new(400.0), Watts::new(800.0), Watts::new(1200.0)],
    )
    .expect("sweep");
    for pair in rows.windows(2) {
        assert!(
            pair[1].1.mean_throughput().value() >= pair[0].1.mean_throughput().value() - 1e-6,
            "throughput decreased when the grid budget grew"
        );
    }
}

#[test]
fn night_is_case_c_and_noon_is_not() {
    let report = run_scenario(small(PolicyKind::GreenHetero)).expect("run");
    let at = |h: usize| &report.epochs[h * 4];
    assert_eq!(at(1).case, SupplyCase::C);
    assert_eq!(at(23).case, SupplyCase::C);
    assert_ne!(at(12).case, SupplyCase::C);
}

#[test]
fn training_happens_once_per_pair_then_never_again() {
    let report = run_scenario(small(PolicyKind::GreenHetero)).expect("run");
    let training: Vec<usize> = report
        .epochs
        .iter()
        .enumerate()
        .filter(|(_, e)| e.training)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(training, vec![0], "only the first epoch trains");
}

#[test]
fn low_trace_uses_more_grid_than_high_trace() {
    let high = run_scenario(small(PolicyKind::GreenHetero)).expect("run");
    let low = run_scenario(Scenario {
        solar_profile: SolarProfile::Low,
        ..small(PolicyKind::GreenHetero)
    })
    .expect("run");
    assert!(
        low.grid_energy > high.grid_energy,
        "low {} vs high {}",
        low.grid_energy,
        high.grid_energy
    );
}

#[test]
fn gpu_combination_runs_rodinia_end_to_end() {
    let scenario = Scenario {
        combination: Combination::Comb6,
        servers_per_type: 2,
        workload: WorkloadKind::SradV1,
        days: 1,
        ..Scenario::paper_runtime(PolicyKind::GreenHetero)
    };
    let report = run_scenario(scenario).expect("gpu run");
    assert!(report.mean_throughput().value() > 0.0);
}

#[test]
fn three_type_rack_runs_end_to_end() {
    let scenario = Scenario {
        combination: Combination::Comb5,
        servers_per_type: 2,
        ..Scenario::paper_runtime(PolicyKind::GreenHetero)
    };
    let report = run_scenario(scenario).expect("comb5 run");
    assert!(report.mean_throughput().value() > 0.0);
}

#[test]
fn mixed_workload_rack_trains_every_pair_and_runs() {
    use greenhetero::server::platform::PlatformKind;
    let scenario = Scenario {
        mixed: Some(vec![
            (PlatformKind::XeonE52620, 3, WorkloadKind::Streamcluster),
            (PlatformKind::XeonE52620, 2, WorkloadKind::Mcf),
            (PlatformKind::CoreI54460, 5, WorkloadKind::Memcached),
        ]),
        ..Scenario::paper_runtime(PolicyKind::GreenHetero)
    };
    let report = run_scenario(scenario).expect("mixed run");
    assert_eq!(report.epochs.len(), 96);
    // All three (config, workload) pairs train in the first epoch, then run.
    assert!(report.epochs[0].training);
    assert!(!report.epochs[1].training);
    assert!(report.mean_throughput().value() > 0.0);
}

#[test]
fn mixed_rack_beats_uniform_too() {
    use greenhetero::server::platform::PlatformKind;
    let base = Scenario {
        mixed: Some(vec![
            (PlatformKind::XeonE52620, 5, WorkloadKind::Streamcluster),
            (PlatformKind::CoreI54460, 5, WorkloadKind::Memcached),
        ]),
        ..Scenario::workload_study(WorkloadKind::SpecJbb, PolicyKind::Uniform)
    };
    let outcomes = compare_policies(&base, &[PolicyKind::Uniform, PolicyKind::GreenHetero])
        .expect("comparison");
    let gain = outcomes[1].report.mean_scarce_throughput().value()
        / outcomes[0].report.mean_scarce_throughput().value();
    assert!(gain > 1.2, "mixed-rack gain was only {gain:.2}");
}

#[test]
fn csv_export_has_a_row_per_epoch() {
    let report = run_scenario(small(PolicyKind::Uniform)).expect("run");
    let mut buf = Vec::new();
    report.write_csv(&mut buf).expect("csv");
    let text = String::from_utf8(buf).expect("utf8");
    assert_eq!(text.lines().count(), report.epochs.len() + 1);
}

#[test]
fn scarce_epochs_exist_and_are_where_greenhetero_wins() {
    // Needs the full-size rack: a 2-per-type rack's 456 W peak demand
    // never outgrows the 1000 W grid budget, so nothing is ever scarce.
    let base = Scenario {
        days: 1,
        ..Scenario::workload_study(WorkloadKind::SpecJbb, PolicyKind::Uniform)
    };
    let outcomes = compare_policies(&base, &[PolicyKind::Uniform, PolicyKind::GreenHetero])
        .expect("comparison");
    let uni = &outcomes[0].report;
    let gh = &outcomes[1].report;
    let scarce_count = gh.epochs.iter().filter(|e| RunReport::is_scarce(e)).count();
    assert!(scarce_count > 10, "expected plenty of scarce epochs");
    let gain = gh.mean_scarce_throughput().value() / uni.mean_scarce_throughput().value();
    assert!(gain > 1.1, "scarce-epoch gain was only {gain:.2}");
}
