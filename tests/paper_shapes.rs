//! Reproduction-band regression tests: the headline shapes of the paper's
//! figures must keep holding as the code evolves. Bands are deliberately
//! generous — they pin the *shape* (who wins, roughly by how much), not
//! exact values.

use greenhetero::core::metrics::EpuAccumulator;
use greenhetero::core::policies::PolicyKind;
use greenhetero::core::sources::SupplyCase;
use greenhetero::core::types::{Ratio, Watts};
use greenhetero::server::rack::{Combination, Rack};
use greenhetero::server::workload::WorkloadKind;
use greenhetero::sim::engine::run_scenario;
use greenhetero::sim::runner::compare_policies;
use greenhetero::sim::scenario::Scenario;

/// Fig. 3: the case study's optimum PAR lies near 65 % and beats the
/// uniform split by roughly 1.5×; uniform EPU sits near 0.86.
#[test]
fn fig3_case_study_shape() {
    let rack = Rack::combination(Combination::Comb1, 1, WorkloadKind::SpecJbb).unwrap();
    let budget = Watts::new(220.0);
    let eval = |par: f64| {
        let a = budget * Ratio::from_percent(par);
        let m = rack.measure(&[a, budget - a], Ratio::ONE);
        let mut epu = EpuAccumulator::new();
        epu.record(m.total_power().min(budget), budget);
        (epu.epu().value(), m.total_throughput().value())
    };
    let (epu_uniform, perf_uniform) = eval(50.0);
    assert!(
        (0.80..0.92).contains(&epu_uniform),
        "uniform EPU {epu_uniform}"
    );

    let mut best = (0.0, 0.0f64);
    for step in 0..=100 {
        let par = f64::from(step);
        let (_, perf) = eval(par);
        if perf > best.1 {
            best = (par, perf);
        }
    }
    assert!(
        (55.0..=75.0).contains(&best.0),
        "optimal PAR {} out of the paper's band",
        best.0
    );
    let gain = best.1 / perf_uniform;
    assert!((1.3..=1.8).contains(&gain), "case-study gain {gain}");
    let (epu_best, _) = eval(best.0);
    assert!(epu_best > 0.95, "EPU at the optimum {epu_best}");
}

/// Fig. 8: under the High trace, GreenHetero gains ≈1.5× while renewable
/// power is insufficient and ≈1× while abundant; mean PAR near 58 %.
#[test]
fn fig8_runtime_shape() {
    let gh = run_scenario(Scenario::paper_runtime(PolicyKind::GreenHetero)).unwrap();
    let uni = run_scenario(Scenario::paper_runtime(PolicyKind::Uniform)).unwrap();

    let scarce = gh
        .mean_throughput_where(|e| e.case != SupplyCase::A)
        .value()
        / uni
            .mean_throughput_where(|e| e.case != SupplyCase::A)
            .value();
    assert!((1.25..=1.9).contains(&scarce), "scarce gain {scarce}");

    let abundant = gh
        .mean_throughput_where(|e| e.case == SupplyCase::A)
        .value()
        / uni
            .mean_throughput_where(|e| e.case == SupplyCase::A)
            .value();
    assert!(
        (0.95..=1.25).contains(&abundant),
        "abundant gain {abundant}"
    );

    let par = gh.mean_par().unwrap().as_percent();
    assert!((50.0..=70.0).contains(&par), "mean PAR {par}%");

    // The battery carries Case C for a few hours before the grid takes over.
    let mut longest = 0.0f64;
    let mut streak = 0.0f64;
    for e in &gh.epochs {
        if e.case == SupplyCase::C && e.battery_discharge.value() > 0.0 {
            streak += 0.25;
            longest = longest.max(streak);
        } else {
            streak = 0.0;
        }
    }
    assert!((3.0..=7.0).contains(&longest), "ride-through {longest} h");
}

/// Figs. 9/10 condensed: on the scarce-supply workload study, GreenHetero
/// beats Uniform on every probe workload, Streamcluster gains most among
/// them, and Memcached sits near the bottom.
#[test]
fn fig9_workload_ordering_shape() {
    let gain = |w: WorkloadKind| {
        let base = Scenario::workload_study(w, PolicyKind::Uniform);
        let o = compare_policies(&base, &[PolicyKind::Uniform, PolicyKind::GreenHetero]).unwrap();
        o[1].report.mean_scarce_throughput().value() / o[0].report.mean_scarce_throughput().value()
    };
    let stream = gain(WorkloadKind::Streamcluster);
    let memcached = gain(WorkloadKind::Memcached);
    let jbb = gain(WorkloadKind::SpecJbb);
    assert!(stream > 1.5, "streamcluster gain {stream}");
    assert!(
        stream > memcached && stream > jbb,
        "streamcluster must lead"
    );
    assert!(
        (1.05..=1.45).contains(&memcached),
        "memcached gain {memcached}"
    );
    assert!(jbb > 1.2, "SPECjbb gain {jbb}");
}

/// Fig. 13: Comb2/Comb4 behave near-homogeneously; Comb1 and Comb5 show
/// clearly heterogeneous gains.
#[test]
fn fig13_combination_shape() {
    let gain = |comb: Combination| {
        let base = Scenario {
            combination: comb,
            ..Scenario::workload_study(WorkloadKind::SpecJbb, PolicyKind::Uniform)
        };
        let o = compare_policies(&base, &[PolicyKind::Uniform, PolicyKind::GreenHetero]).unwrap();
        o[1].report.mean_scarce_throughput().value() / o[0].report.mean_scarce_throughput().value()
    };
    let c1 = gain(Combination::Comb1);
    let c2 = gain(Combination::Comb2);
    let c4 = gain(Combination::Comb4);
    let c5 = gain(Combination::Comb5);
    assert!(c2 < c1 && c4 < c1, "near-homogeneous pairs must gain least");
    assert!(c2 < 1.25 && c4 < 1.25, "c2 {c2}, c4 {c4}");
    assert!(c1 > 1.25, "c1 {c1}");
    assert!(c5 > 1.3, "c5 {c5}");
}

/// Fig. 14: on the GPU rack, Srad_v1 gains the most (≈4.6× in the paper)
/// and Cfd the least.
#[test]
fn fig14_gpu_shape() {
    let gain = |w: WorkloadKind| {
        let base = Scenario {
            combination: Combination::Comb6,
            ..Scenario::workload_study(w, PolicyKind::Uniform)
        };
        let o = compare_policies(&base, &[PolicyKind::Uniform, PolicyKind::GreenHetero]).unwrap();
        o[1].report.mean_scarce_throughput().value() / o[0].report.mean_scarce_throughput().value()
    };
    let srad = gain(WorkloadKind::SradV1);
    let cfd = gain(WorkloadKind::Cfd);
    assert!((3.5..=6.0).contains(&srad), "srad gain {srad}");
    assert!(cfd < srad, "cfd {cfd} must gain less than srad {srad}");
    assert!(cfd > 1.2, "cfd still gains: {cfd}");
}
